package bench

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"paw/internal/blockstore"
	"paw/internal/core"
	"paw/internal/dist"
	"paw/internal/layout"
	"paw/internal/obs"
	"paw/internal/placement"
	"paw/internal/router"
	"paw/internal/workload"
)

// ServingOptions tunes the serving benchmark independently of the dataset
// config; the zero value means "use the defaults".
type ServingOptions struct {
	// Workers is the worker-process count of the in-process cluster
	// (default 3).
	Workers int
	// PointDuration is the closed-loop measurement window per (transport,
	// mode, concurrency) point (default 250ms).
	PointDuration time.Duration
	// Concurrency is the sweep (default 1, 2, 4, 8, 16, 32, 64).
	Concurrency []int
}

func (o ServingOptions) normalized() ServingOptions {
	if o.Workers <= 0 {
		o.Workers = 3
	}
	if o.PointDuration <= 0 {
		o.PointDuration = 250 * time.Millisecond
	}
	if len(o.Concurrency) == 0 {
		o.Concurrency = []int{1, 2, 4, 8, 16, 32, 64}
	}
	return o
}

// ServingPoint is one closed-loop measurement: a transport, a load mode and
// a concurrency level, with the achieved throughput and latency quantiles.
type ServingPoint struct {
	// Transport is "binary" (multiplexed frame protocol) or "gob" (legacy
	// codec-per-connection, the baseline).
	Transport string `json:"transport"`
	// Mode is the load shape: "pipeline" drives one shared client
	// connection from N goroutines (the single-client call-throughput
	// experiment — the legacy client serialises on its connection mutex,
	// the multiplexed client pipelines); "clients" gives every goroutine
	// its own connection (the server-saturation experiment).
	Mode        string  `json:"mode"`
	Concurrency int     `json:"concurrency"`
	Queries     int     `json:"queries"`
	QPS         float64 `json:"qps"`
	P50Micros   float64 `json:"p50_us"`
	P99Micros   float64 `json:"p99_us"`
	// SharedScans counts worker kernel scans avoided during this point by
	// coalescing onto an identical in-flight scan (scan sharing). Only
	// concurrent in-flight requests can share, so this is ~0 at concurrency 1
	// and for the gob pipeline mode (which serialises on the connection).
	SharedScans int64 `json:"shared_scans"`
}

// ServingSummary condenses one transport's sweep: the best single-client
// (one-connection) throughput and the saturation point of the many-clients
// sweep.
type ServingSummary struct {
	Transport string `json:"transport"`
	// SingleClientQPS is the best throughput one client connection achieved
	// across pipeline depths.
	SingleClientQPS float64 `json:"single_client_qps"`
	// SaturationQPS is the highest throughput of the many-clients sweep and
	// SaturationConcurrency the client count that reached it; beyond this
	// point adding clients does not add throughput.
	SaturationQPS         float64 `json:"saturation_qps"`
	SaturationConcurrency int     `json:"saturation_concurrency"`
	// P99AtSaturationMicros is the tail latency at the saturation point.
	P99AtSaturationMicros float64 `json:"p99_at_saturation_us"`
}

// ServingReport is the machine-readable serving-path snapshot written to
// BENCH_serving.json.
type ServingReport struct {
	Meta       Meta     `json:"meta"`
	Rows       int      `json:"rows"`
	Workers    int      `json:"workers"`
	Statements []string `json:"statements"`
	// PointMillis is the closed-loop window per measured point.
	PointMillis int64          `json:"point_ms"`
	Points      []ServingPoint `json:"points"`
	Summaries   []ServingSummary `json:"summaries"`
	// MuxSpeedupSingleClient is binary/gob on SingleClientQPS — the
	// multiplexing payoff on one connection. MuxSpeedupSaturation is the
	// same ratio on SaturationQPS.
	MuxSpeedupSingleClient float64 `json:"mux_speedup_single_client"`
	MuxSpeedupSaturation   float64 `json:"mux_speedup_saturation"`
}

// servingBenchStatements are the benchmark's query mix, rotated round-robin
// by every load goroutine. The harness dataset is projected to Config.Dims
// attributes and normalized to [0,1] per dimension (see Config.tpch), so
// the predicates are expressed on the normalized domain.
var servingBenchStatements = []string{
	"SELECT * FROM t WHERE l_quantity >= 0.2 AND l_quantity <= 0.4",
	"SELECT * FROM t WHERE l_extendedprice BETWEEN 0.1 AND 0.7",
	"SELECT * FROM t WHERE l_discount <= 0.1 OR l_discount >= 0.9",
	"SELECT * FROM t",
}

// queryer is the common surface of dist.Client and dist.MuxClient.
type queryer interface {
	Query(sql string) (dist.QueryResponse, error)
}

// servingCluster is the in-process fleet the benchmark drives: one worker
// set shared by a binary-transport master and a gob-transport master, so
// both transports answer over identical data and placement.
type servingCluster struct {
	workers  []*dist.Worker
	regs     []*obs.Registry // one per worker, for scan-sharing telemetry
	masters  map[string]*dist.Master
	addrs    map[string]string // transport name -> master client address
	shutdown []func()
}

// sharedScans sums the scan-sharing counter across the worker fleet; callers
// diff two readings to attribute shared scans to a measurement window.
func (c *servingCluster) sharedScans() int64 {
	var total int64
	for _, reg := range c.regs {
		total += reg.Snapshot().Counter(dist.MetricWorkerSharedScans)
	}
	return total
}

func (c *servingCluster) close() {
	for i := len(c.shutdown) - 1; i >= 0; i-- {
		c.shutdown[i]()
	}
}

// startServingCluster materialises the dataset, starts the workers and one
// master per transport.
func startServingCluster(cfg Config, opt ServingOptions) (*servingCluster, error) {
	data := cfg.tpch()
	n := data.NumRows()
	rows := make([]int, n)
	for i := range rows {
		rows[i] = i
	}
	hist := workload.Uniform(data.Domain(), workload.Defaults(25, cfg.Seed))
	l := core.Build(data, data.Sample(cfg.sampleRowsFor(n), cfg.Seed+1), data.Domain(), hist, core.Params{MinRows: cfg.minRowsFor(n)})
	store := blockstore.Materialize(l, data, blockstore.Config{GroupRows: 2048})

	place := placement.RoundRobin(l, opt.Workers)
	perWorker := make([][]layout.ID, opt.Workers)
	for id, w := range place {
		perWorker[w] = append(perWorker[w], id)
	}
	c := &servingCluster{masters: map[string]*dist.Master{}, addrs: map[string]string{}}
	addrs := make([]string, opt.Workers)
	for w := 0; w < opt.Workers; w++ {
		wk := dist.NewWorker(store, perWorker[w])
		reg := obs.New()
		wk.SetMetrics(reg)
		c.regs = append(c.regs, reg)
		addr, err := wk.Start("127.0.0.1:0")
		if err != nil {
			c.close()
			return nil, err
		}
		c.workers = append(c.workers, wk)
		c.shutdown = append(c.shutdown, func() { wk.Close() })
		addrs[w] = addr
	}
	for _, tr := range []dist.Transport{dist.TransportBinary, dist.TransportGob} {
		rm, err := router.NewMaster(l, data.Names())
		if err != nil {
			c.close()
			return nil, err
		}
		m, err := dist.NewMaster(rm, addrs, place)
		if err != nil {
			c.close()
			return nil, err
		}
		mcfg := dist.DefaultConfig()
		mcfg.Transport = tr
		// The result cache would turn the steady-state workload into pure
		// cache hits (~zero service time), so every point would measure the
		// cache instead of the transport and execution path it sits in front
		// of. The cache has its own unit tests; keep it out of the benchmark.
		mcfg.ResultCacheSize = 0
		m.Configure(mcfg)
		maddr, err := m.Start("127.0.0.1:0")
		if err != nil {
			c.close()
			return nil, err
		}
		c.masters[tr.String()] = m
		c.addrs[tr.String()] = maddr
		c.shutdown = append(c.shutdown, func() { m.Close() })
	}
	return c, nil
}

// drive runs a closed loop: concurrency goroutines issue the statement mix
// against their assigned client for the window, recording every call
// latency.
func drive(clients []queryer, concurrency int, window time.Duration) (ServingPoint, error) {
	latencies := make([][]time.Duration, concurrency)
	errs := make([]error, concurrency)
	deadline := time.Now().Add(window)
	start := time.Now()
	var wg sync.WaitGroup
	for g := 0; g < concurrency; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			cl := clients[g%len(clients)]
			for i := 0; time.Now().Before(deadline); i++ {
				sql := servingBenchStatements[(g+i)%len(servingBenchStatements)]
				t0 := time.Now()
				if _, err := cl.Query(sql); err != nil {
					errs[g] = fmt.Errorf("goroutine %d: %w", g, err)
					return
				}
				latencies[g] = append(latencies[g], time.Since(t0))
			}
		}(g)
	}
	wg.Wait()
	elapsed := time.Since(start)
	for _, err := range errs {
		if err != nil {
			return ServingPoint{}, err
		}
	}
	var all []time.Duration
	for _, ls := range latencies {
		all = append(all, ls...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	p := ServingPoint{Concurrency: concurrency, Queries: len(all)}
	if len(all) > 0 && elapsed > 0 {
		p.QPS = float64(len(all)) / elapsed.Seconds()
		p.P50Micros = float64(all[len(all)/2].Microseconds())
		p.P99Micros = float64(all[len(all)*99/100].Microseconds())
	}
	return p, nil
}

// ServingBench measures the serving front-end end to end over loopback TCP:
// for each transport, a single-connection pipeline-depth sweep (the
// multiplexing payoff) and a many-clients saturation sweep (qps, p50, p99,
// saturation point). Both transports drive the same workers and data in the
// same process, so the comparison isolates the protocol stack.
func ServingBench(cfg Config, opt ServingOptions) (ServingReport, error) {
	opt = opt.normalized()
	c, err := startServingCluster(cfg, opt)
	if err != nil {
		return ServingReport{}, err
	}
	defer c.close()

	rep := ServingReport{
		Meta:        Meta{Schema: ServingSchema},
		Rows:        cfg.TPCHRows,
		Workers:     opt.Workers,
		Statements:  servingBenchStatements,
		PointMillis: opt.PointDuration.Milliseconds(),
	}

	dialOne := func(transport string) (queryer, func(), error) {
		if transport == "gob" {
			cl, err := dist.Dial(c.addrs[transport])
			if err != nil {
				return nil, nil, err
			}
			return cl, func() { cl.Close() }, nil
		}
		cl, err := dist.DialMux(c.addrs[transport])
		if err != nil {
			return nil, nil, err
		}
		return cl, func() { cl.Close() }, nil
	}

	for _, transport := range []string{"gob", "binary"} {
		summary := ServingSummary{Transport: transport}

		// Warm the master (worker links, caches) before any timed window.
		warm, closeWarm, err := dialOne(transport)
		if err != nil {
			return rep, err
		}
		for _, sql := range servingBenchStatements {
			if _, err := warm.Query(sql); err != nil {
				closeWarm()
				return rep, fmt.Errorf("%s warmup %q: %w", transport, sql, err)
			}
		}
		closeWarm()

		// Pipeline sweep: one connection, N goroutines.
		one, closeOne, err := dialOne(transport)
		if err != nil {
			return rep, err
		}
		for _, conc := range opt.Concurrency {
			shared0 := c.sharedScans()
			p, err := drive([]queryer{one}, conc, opt.PointDuration)
			if err != nil {
				closeOne()
				return rep, fmt.Errorf("%s pipeline@%d: %w", transport, conc, err)
			}
			p.Transport, p.Mode = transport, "pipeline"
			p.SharedScans = c.sharedScans() - shared0
			rep.Points = append(rep.Points, p)
			if p.QPS > summary.SingleClientQPS {
				summary.SingleClientQPS = p.QPS
			}
		}
		closeOne()

		// Saturation sweep: one connection per goroutine.
		for _, conc := range opt.Concurrency {
			clients := make([]queryer, conc)
			closers := make([]func(), conc)
			for i := range clients {
				cl, cls, err := dialOne(transport)
				if err != nil {
					return rep, err
				}
				clients[i], closers[i] = cl, cls
			}
			shared0 := c.sharedScans()
			p, err := drive(clients, conc, opt.PointDuration)
			for _, cls := range closers {
				cls()
			}
			if err != nil {
				return rep, fmt.Errorf("%s clients@%d: %w", transport, conc, err)
			}
			p.Transport, p.Mode = transport, "clients"
			p.SharedScans = c.sharedScans() - shared0
			rep.Points = append(rep.Points, p)
			if p.QPS > summary.SaturationQPS {
				summary.SaturationQPS = p.QPS
				summary.SaturationConcurrency = p.Concurrency
				summary.P99AtSaturationMicros = p.P99Micros
			}
		}
		rep.Summaries = append(rep.Summaries, summary)
	}

	var gobSum, binSum *ServingSummary
	for i := range rep.Summaries {
		switch rep.Summaries[i].Transport {
		case "gob":
			gobSum = &rep.Summaries[i]
		case "binary":
			binSum = &rep.Summaries[i]
		}
	}
	if gobSum != nil && binSum != nil {
		if gobSum.SingleClientQPS > 0 {
			rep.MuxSpeedupSingleClient = binSum.SingleClientQPS / gobSum.SingleClientQPS
		}
		if gobSum.SaturationQPS > 0 {
			rep.MuxSpeedupSaturation = binSum.SaturationQPS / gobSum.SaturationQPS
		}
	}
	return rep, nil
}
