package bench

import (
	"context"
	"fmt"
	"strings"
	"time"

	"paw/internal/adaptive"
	"paw/internal/blockstore"
	"paw/internal/core"
	"paw/internal/dataset"
	"paw/internal/dist"
	"paw/internal/drift"
	"paw/internal/geom"
	"paw/internal/ingest"
	"paw/internal/layout"
	"paw/internal/placement"
	"paw/internal/router"
	"paw/internal/sim"
	"paw/internal/workload"
)

// DriftOptions tunes the drift benchmark; the zero value means "use the
// defaults".
type DriftOptions struct {
	// Workers is the worker-process count of the in-process cluster
	// (default 2).
	Workers int
	// Window / CheckEvery are the monitor's sliding window and check cadence
	// (defaults 48 / 16 — small enough that every scenario stream holds
	// several full windows).
	Window     int
	CheckEvery int
}

func (o DriftOptions) normalized() DriftOptions {
	if o.Workers <= 0 {
		o.Workers = 2
	}
	if o.Window <= 0 {
		o.Window = 48
	}
	if o.CheckEvery <= 0 {
		o.CheckEvery = 16
	}
	return o
}

// DriftPhaseStat is the observed per-phase serving cost of one scenario run.
type DriftPhaseStat struct {
	Name         string  `json:"name"`
	Queries      int     `json:"queries"`
	AvgScanBytes float64 `json:"avg_scan_bytes"`
	AvgRows      float64 `json:"avg_rows"`
}

// DriftScenarioResult is one scenario's end-to-end outcome: whether the
// monitor fired (and whether it should have), how long the cluster took to
// recover from the cost regression, what the migration shipped, and how the
// patched layout compares to a full offline rebuild and to an AQWA-style
// per-query repartitioner over the same stream.
type DriftScenarioResult struct {
	Scenario    string `json:"scenario"`
	ExpectDrift bool   `json:"expect_drift"`
	Queries     int    `json:"queries"`

	// Triggered/Migrated report the monitor's decision for the whole stream;
	// a correct run has Triggered == ExpectDrift.
	Triggered bool `json:"triggered"`
	Migrated  bool `json:"migrated"`
	// TriggerAtQuery is the stream index at which the firing check was
	// launched; MigratedAtQuery the index of the first query served on the
	// new epoch (-1 when the scenario never migrated).
	TriggerAtQuery  int `json:"trigger_at_query"`
	MigratedAtQuery int `json:"migrated_at_query"`
	// RecoveryQueries is the cost-regression recovery time in queries: from
	// the onset of the stream's final phase to the cutover.
	RecoveryQueries int `json:"recovery_queries"`
	// QueriesDuringMigration counts queries the cluster answered while the
	// triggering rebuild+migration was in flight (service never stops).
	QueriesDuringMigration int   `json:"queries_during_migration"`
	MigrationMillis        int64 `json:"migration_ms"`

	Epoch        uint64 `json:"epoch"`
	MovedBytes   int64  `json:"moved_bytes"`
	RenamedParts int    `json:"renamed_parts"`
	AddedParts   int    `json:"added_parts"`
	RemovedParts int    `json:"removed_parts"`

	Phases []DriftPhaseStat `json:"phases"`

	// CostBaseline/CostRegressed/CostRecovered are observed per-query scan
	// bytes: the first phase, the final phase before cutover, and the final
	// phase after cutover.
	CostBaseline  float64 `json:"cost_baseline_bytes"`
	CostRegressed float64 `json:"cost_regressed_bytes"`
	CostRecovered float64 `json:"cost_recovered_bytes"`

	// PatchedCost/OfflineCost are the modeled per-query costs of the served
	// layout and of a full offline rebuild over the final-phase workload;
	// RecoveryVsOffline is their ratio (the incremental patch's quality bar —
	// the E2E test holds it under 1.10).
	PatchedCost       float64 `json:"patched_cost_bytes"`
	OfflineCost       float64 `json:"offline_cost_bytes"`
	RecoveryVsOffline float64 `json:"recovery_vs_offline"`

	// ClusterScanBytes is the observed total the cluster scanned for the
	// stream; AdaptiveScanBytes/AdaptiveWriteBytes are the modeled totals of
	// the AQWA-style comparator (per-query incremental repartitioner) on the
	// identical stream, with AdaptiveParts its final partition count.
	ClusterScanBytes   int64 `json:"cluster_scan_bytes"`
	AdaptiveScanBytes  int64 `json:"adaptive_scan_bytes"`
	AdaptiveWriteBytes int64 `json:"adaptive_write_bytes"`
	AdaptiveParts      int   `json:"adaptive_parts"`
}

// DriftReport is the machine-readable drift snapshot written to
// BENCH_drift.json.
type DriftReport struct {
	Meta       Meta                  `json:"meta"`
	Workers    int                   `json:"workers"`
	Window     int                   `json:"window"`
	CheckEvery int                   `json:"check_every"`
	Scenarios  []DriftScenarioResult `json:"scenarios"`
}

// driftSQL renders a range box as SQL over the dataset's columns (%v prints
// the shortest round-tripping float, so the parsed box is exact).
func driftSQL(names []string, b geom.Box) string {
	var sb strings.Builder
	sb.WriteString("SELECT * FROM t WHERE ")
	for d, n := range names {
		if d > 0 {
			sb.WriteString(" AND ")
		}
		fmt.Fprintf(&sb, "%s >= %v AND %s <= %v", n, b.Lo[d], n, b.Hi[d])
	}
	return sb.String()
}

// DriftBench plays every sim.DriftScenarios stream against a live in-process
// cluster with an attached drift controller: the out-of-scope scenarios must
// trigger, rebuild only the violated region and recover observed cost while
// serving queries throughout; the in-scope scenarios must not trigger. Each
// run also replays the identical stream through an AQWA-style per-query
// repartitioner as the adaptive baseline.
func DriftBench(cfg Config, opt DriftOptions) (DriftReport, error) {
	opt = opt.normalized()
	rep := DriftReport{
		Meta:       Meta{Schema: DriftSchema},
		Workers:    opt.Workers,
		Window:     opt.Window,
		CheckEvery: opt.CheckEvery,
	}
	for _, sc := range sim.DriftScenarios(cfg.Seed) {
		res, err := runDriftScenario(sc, opt)
		if err != nil {
			return rep, fmt.Errorf("%s: %w", sc.Name, err)
		}
		rep.Scenarios = append(rep.Scenarios, res)
	}
	return rep, nil
}

// triggerOutcome is one background TriggerNow's result.
type triggerOutcome struct {
	rep     drift.Report
	err     error
	elapsed time.Duration
}

func runDriftScenario(sc sim.DriftScenario, opt DriftOptions) (DriftScenarioResult, error) {
	res := DriftScenarioResult{
		Scenario:        sc.Name,
		ExpectDrift:     sc.ExpectDrift,
		TriggerAtQuery:  -1,
		MigratedAtQuery: -1,
	}
	data := sc.Data
	names := data.Names()

	// Offline construction from the historical workload, exactly like the
	// cluster would have been provisioned.
	sample := data.Sample(1200, sc.Seed+1)
	l := core.Build(data, sample, data.Domain(), sc.Hist, core.Params{MinRows: 20, Delta: sc.Delta})
	l.Route(data)
	store := blockstore.Materialize(l, data, blockstore.Config{GroupRows: 256})

	place := placement.RoundRobin(l, opt.Workers)
	perWorker := make([][]layout.ID, opt.Workers)
	for id, w := range place {
		perWorker[w] = append(perWorker[w], id)
	}
	addrs := make([]string, opt.Workers)
	var workers []*dist.Worker
	defer func() {
		for _, wk := range workers {
			wk.Close()
		}
	}()
	for w := 0; w < opt.Workers; w++ {
		wk := dist.NewWorker(store, perWorker[w])
		addr, err := wk.Start("127.0.0.1:0")
		if err != nil {
			return res, err
		}
		workers = append(workers, wk)
		addrs[w] = addr
	}
	rm, err := router.NewMaster(l, names)
	if err != nil {
		return res, err
	}
	m, err := dist.NewMaster(rm, addrs, place)
	if err != nil {
		return res, err
	}
	defer m.Close()
	mcfg := dist.DefaultConfig()
	// The result cache would absorb replayed queries at zero observed cost
	// and blur the regression signal; the monitor is what is under test here.
	mcfg.ResultCacheSize = 0
	m.Configure(mcfg)

	dcfg := drift.Config{
		Window:       opt.Window,
		CheckEvery:   opt.CheckEvery,
		Delta:        sc.Delta,
		DeltaSlack:   1,
		CostFactor:   1.2,
		MinGain:      0.05,
		Cooldown:     opt.Window,
		BuildMinRows: 10,
		MinPartRows:  64,
		MaxPartRows:  256,
		BuildSample:  800,
		GroupRows:    256,
		Replicas:     1,
		Validate:     true,
		Seed:         sc.Seed,
	}
	ctl := drift.New(m, data, sc.Hist, dcfg)
	ctl.Attach(false)

	stream := sc.Stream()
	offs := sc.PhaseOffsets()
	res.Queries = len(stream)
	scanBytes := make([]int64, len(stream))
	rows := make([]int, len(stream))

	var (
		migCh       chan triggerOutcome
		inFlight    int // queries answered while the current check runs
		launchedAt  int
		checksMuted bool // stop checking once a migration landed
	)
	collect := func(out triggerOutcome) error {
		if out.err != nil {
			return fmt.Errorf("trigger at query %d: %w", launchedAt, out.err)
		}
		if out.rep.Triggered && res.TriggerAtQuery < 0 {
			res.TriggerAtQuery = launchedAt
		}
		res.Triggered = res.Triggered || out.rep.Triggered
		if out.rep.Migrated {
			res.Migrated = true
			res.Epoch = out.rep.Epoch
			res.MovedBytes = out.rep.MovedBytes
			res.RenamedParts = out.rep.Renamed
			res.AddedParts = out.rep.Added
			res.RemovedParts = out.rep.Removed
			res.QueriesDuringMigration = inFlight
			res.MigrationMillis = out.elapsed.Milliseconds()
			checksMuted = true
		}
		return nil
	}
	for i, b := range stream {
		resp, err := m.Query(driftSQL(names, b))
		if err != nil {
			return res, fmt.Errorf("query %d: %w", i, err)
		}
		scanBytes[i], rows[i] = resp.BytesScanned, resp.Rows
		if migCh != nil {
			inFlight++
			select {
			case out := <-migCh:
				migCh = nil
				if err := collect(out); err != nil {
					return res, err
				}
			default:
			}
		}
		if res.MigratedAtQuery < 0 && m.Epoch() > 0 {
			res.MigratedAtQuery = i
		}
		if migCh == nil && !checksMuted && (i+1)%opt.CheckEvery == 0 {
			migCh = make(chan triggerOutcome, 1)
			launchedAt = i
			inFlight = 0
			go func(ch chan triggerOutcome) {
				t0 := time.Now()
				trep, terr := ctl.TriggerNow(context.Background())
				ch <- triggerOutcome{rep: trep, err: terr, elapsed: time.Since(t0)}
			}(migCh)
		}
	}
	if migCh != nil {
		if err := collect(<-migCh); err != nil {
			return res, err
		}
	}
	if res.Migrated && res.MigratedAtQuery < 0 {
		res.MigratedAtQuery = len(stream)
	}

	// Per-phase observed costs.
	for p, ph := range sc.Phases {
		lo, hi := offs[p], offs[p+1]
		st := DriftPhaseStat{Name: ph.Name, Queries: hi - lo}
		for i := lo; i < hi; i++ {
			st.AvgScanBytes += float64(scanBytes[i])
			st.AvgRows += float64(rows[i])
			res.ClusterScanBytes += scanBytes[i]
		}
		if st.Queries > 0 {
			st.AvgScanBytes /= float64(st.Queries)
			st.AvgRows /= float64(st.Queries)
		}
		res.Phases = append(res.Phases, st)
	}
	res.CostBaseline = res.Phases[0].AvgScanBytes

	// Regression and recovery on the final phase, split at the cutover.
	lastLo := offs[len(offs)-2]
	avgOver := func(lo, hi int) float64 {
		if hi <= lo {
			return 0
		}
		var sum int64
		for i := lo; i < hi; i++ {
			sum += scanBytes[i]
		}
		return float64(sum) / float64(hi-lo)
	}
	cut := len(stream)
	if res.MigratedAtQuery >= 0 {
		cut = res.MigratedAtQuery
	}
	if cut < lastLo {
		cut = lastLo
	}
	res.CostRegressed = avgOver(lastLo, cut)
	res.CostRecovered = avgOver(cut, len(stream))
	if res.Migrated && cut >= len(stream) {
		// The cutover landed only after the stream drained (slow machines,
		// GOMAXPROCS=1): replay the final phase once on the new epoch so the
		// recovered cost is always measured. The result cache is off, so the
		// replay scans for real.
		var sum int64
		for i := lastLo; i < len(stream); i++ {
			resp, err := m.Query(driftSQL(names, stream[i]))
			if err != nil {
				return res, fmt.Errorf("recovery replay %d: %w", i, err)
			}
			sum += resp.BytesScanned
		}
		res.CostRecovered = float64(sum) / float64(len(stream)-lastLo)
	}
	if res.MigratedAtQuery >= 0 {
		res.RecoveryQueries = res.MigratedAtQuery - lastLo
		if res.RecoveryQueries < 0 {
			res.RecoveryQueries = 0
		}
	}

	// Modeled recovery quality: the served layout vs a full offline rebuild
	// over the final-phase workload.
	var live workload.Workload
	for i := lastLo; i < len(stream); i++ {
		live = append(live, workload.Query{Box: stream[i], Seq: int64(i - lastLo)})
	}
	liveBoxes := live.Boxes()
	res.PatchedCost = m.Router().Layout().AvgCost(liveBoxes, nil)
	offline, err := offlineDriftLayout(data, live, dcfg)
	if err != nil {
		return res, err
	}
	res.OfflineCost = offline.AvgCost(liveBoxes, nil)
	if res.OfflineCost > 0 {
		res.RecoveryVsOffline = res.PatchedCost / res.OfflineCost
	}

	// AQWA-style adaptive baseline: warm on the historical workload, then
	// replay the identical stream, counting its modeled scan and write bytes.
	ap := adaptive.New(data, adaptive.Params{MinRows: dcfg.MinPartRows})
	for _, q := range sc.Hist {
		ap.Query(q.Box)
	}
	scan0, write0 := ap.CumulativeScanBytes, ap.CumulativeWriteBytes
	for _, b := range stream {
		ap.Query(b)
	}
	res.AdaptiveScanBytes = ap.CumulativeScanBytes - scan0
	res.AdaptiveWriteBytes = ap.CumulativeWriteBytes - write0
	res.AdaptiveParts = ap.NumPartitions()
	return res, nil
}

// offlineDriftLayout runs the full offline construction pipeline (sample
// build + full-scale ingest maintenance) for the live workload — the quality
// bar the incremental patch is measured against.
func offlineDriftLayout(data *dataset.Dataset, live workload.Workload, dcfg drift.Config) (*layout.Layout, error) {
	all := make([]int, data.NumRows())
	for i := range all {
		all[i] = i
	}
	sample := data.Sample(dcfg.BuildSample, dcfg.Seed+3)
	built := core.Build(data, sample, data.Domain(), live, core.Params{MinRows: dcfg.BuildMinRows, Delta: dcfg.Delta})
	ing, err := ingest.New(built, nil, ingest.Params{MinRows: dcfg.MinPartRows, MaxRows: dcfg.MaxPartRows})
	if err != nil {
		return nil, err
	}
	for _, r := range all {
		ing.Add(data.Point(r))
	}
	ing.Maintain()
	return ing.Snapshot(), nil
}
