package bench

import (
	"runtime"
	"testing"

	"paw/internal/core"
	"paw/internal/kdtree"
	"paw/internal/qdtree"
	"paw/internal/workload"
)

// ConstructionResult is one (method, workers) cell of the construction
// benchmark: pure layout-generation time and allocation pressure, plus the
// wall-clock speedup against the same method built serially.
type ConstructionResult struct {
	Method          string  `json:"method"`
	Workers         int     `json:"workers"`
	NsPerOp         int64   `json:"ns_per_op"`
	AllocsPerOp     int64   `json:"allocs_per_op"`
	BytesPerOp      int64   `json:"bytes_per_op"`
	SpeedupVsSerial float64 `json:"speedup_vs_serial"`
}

// ConstructionReport is the machine-readable construction-performance
// snapshot written to BENCH_construction.json so the perf trajectory is
// comparable across PRs. Speedups are only meaningful relative to the
// recorded GOMAXPROCS/NumCPU: on a single-core host every worker count
// collapses to serial execution.
type ConstructionReport struct {
	Meta        Meta                 `json:"meta"`
	GOMAXPROCS  int                  `json:"gomaxprocs"`
	NumCPU      int                  `json:"num_cpu"`
	TPCHRows    int                  `json:"tpch_rows"`
	SampleRows  int                  `json:"sample_rows"`
	MinRows     int                  `json:"min_rows"`
	HistQueries int                  `json:"hist_queries"`
	Results     []ConstructionResult `json:"results"`
}

// ConstructionBench measures layout construction (no routing) for every
// builder at each worker count, on the configured TPC-H scenario. The
// layouts are identical at every worker count (see the determinism
// regression test); only build time and allocations vary.
func ConstructionBench(cfg Config, workers []int) ConstructionReport {
	data := cfg.tpch()
	dom := data.Domain()
	hist := workload.Uniform(dom, cfg.genParams(cfg.NumQueries/2, cfg.Seed+11))
	sample := data.Sample(cfg.sampleRowsFor(data.NumRows()), cfg.Seed+7)
	minRows := cfg.minRowsFor(data.NumRows())
	delta := deltaAbs(dom, cfg.DeltaFrac)
	queries := hist.Boxes()

	builders := []struct {
		name  string
		build func(par int)
	}{
		{MPAW, func(par int) {
			core.Build(data, sample, dom, hist, core.Params{MinRows: minRows, Delta: delta, Parallelism: par})
		}},
		{MPAWRefine, func(par int) {
			core.Build(data, sample, dom, hist, core.Params{
				MinRows: minRows, Delta: delta, DataAwareRefine: true, Parallelism: par,
			})
		}},
		{MQdTree, func(par int) {
			qdtree.Build(data, sample, dom, queries, qdtree.Params{MinRows: minRows, Parallelism: par})
		}},
		{MKdTree, func(par int) {
			kdtree.Build(data, sample, dom, kdtree.Params{MinRows: minRows, Parallelism: par})
		}},
		{"PAW-beam", func(par int) {
			core.BuildBeam(data, sample, dom, hist, core.BeamParams{
				Params: core.Params{MinRows: minRows, Delta: delta, Parallelism: par},
				Width:  2, Branch: 2,
			})
		}},
	}

	rep := ConstructionReport{
		Meta:        Meta{Schema: ConstructionSchema},
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		NumCPU:      runtime.NumCPU(),
		TPCHRows:    data.NumRows(),
		SampleRows:  len(sample),
		MinRows:     minRows,
		HistQueries: len(queries),
	}
	for _, b := range builders {
		var serialNs int64
		for _, w := range workers {
			r := testing.Benchmark(func(tb *testing.B) {
				tb.ReportAllocs()
				for i := 0; i < tb.N; i++ {
					b.build(w)
				}
			})
			res := ConstructionResult{
				Method:      b.name,
				Workers:     w,
				NsPerOp:     r.NsPerOp(),
				AllocsPerOp: r.AllocsPerOp(),
				BytesPerOp:  r.AllocedBytesPerOp(),
			}
			if w == 1 {
				serialNs = res.NsPerOp
			}
			if serialNs > 0 && res.NsPerOp > 0 {
				res.SpeedupVsSerial = float64(serialNs) / float64(res.NsPerOp)
			}
			rep.Results = append(rep.Results, res)
		}
	}
	return rep
}
