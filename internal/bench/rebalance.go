package bench

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"paw/internal/blockstore"
	"paw/internal/core"
	"paw/internal/dataset"
	"paw/internal/dist"
	"paw/internal/geom"
	"paw/internal/layout"
	"paw/internal/membership"
	"paw/internal/obs"
	"paw/internal/router"
	"paw/internal/workload"
)

// RebalanceOptions tunes the elastic-rebalance benchmark; the zero value
// means "use the defaults".
type RebalanceOptions struct {
	// Workers is the initial fleet size (default 3).
	Workers int
	// Replicas is the copies per partition (default 2).
	Replicas int
	// Rows is the dataset size (default 8000).
	Rows int
}

func (o RebalanceOptions) normalized() RebalanceOptions {
	if o.Workers <= 0 {
		o.Workers = 3
	}
	if o.Replicas <= 0 {
		o.Replicas = 2
	}
	if o.Rows <= 0 {
		o.Rows = 8000
	}
	return o
}

// RebalanceEvent is one membership event (a worker joining or gracefully
// leaving) and the live rebalance it triggered: how much data moved relative
// to the consistent-hash ideal, how long the round took, and how the query
// stream hammering the master throughout experienced it.
type RebalanceEvent struct {
	Event         string `json:"event"` // "join" or "leave"
	WorkersBefore int    `json:"workers_before"`
	WorkersAfter  int    `json:"workers_after"`
	Epoch         uint64 `json:"epoch"`

	// Movement accounting: copies shipped vs the P·R/(N+1) consistent-hash
	// ideal (for a join) or the departing worker's hosted set (for a leave).
	MovedPartitions  int     `json:"moved_partitions"`
	MovedBytes       int64   `json:"moved_bytes"`
	ReusedPartitions int     `json:"reused_partitions"`
	TotalCopies      int     `json:"total_copies"`
	IdealMoves       float64 `json:"ideal_moves"`
	MoveRatio        float64 `json:"move_ratio"` // moved / total copies

	RebalanceMillis int64 `json:"rebalance_ms"`

	// Availability: queries served concurrently with the whole event. Every
	// answered query is cross-checked against the dataset oracle; an elastic
	// cluster that stays up but answers wrong does not count as available.
	QueriesDuring int     `json:"queries_during"`
	QueryErrors   int     `json:"query_errors"`
	WrongAnswers  int     `json:"wrong_answers"`
	Availability  float64 `json:"availability"`
}

// RebalanceReport is the machine-readable elastic-membership snapshot
// written to BENCH_rebalance.json.
type RebalanceReport struct {
	Meta       Meta             `json:"meta"`
	Workers    int              `json:"workers"`
	Replicas   int              `json:"replicas"`
	Rows       int              `json:"rows"`
	Partitions int              `json:"partitions"`
	Events     []RebalanceEvent `json:"events"`
}

// RebalanceBench measures the elastic lifecycle end to end on a live
// in-process cluster: a fresh worker joins over the real wire protocol
// (handshake + heartbeats through dist.Heartbeater), the master rebalances
// with minimal movement while a query stream runs, and finally the joiner
// leaves gracefully and its partitions drain back. The report records data
// moved and query availability for both events.
func RebalanceBench(cfg Config, opt RebalanceOptions) (RebalanceReport, error) {
	opt = opt.normalized()
	rep := RebalanceReport{
		Meta:     Meta{Schema: RebalanceSchema},
		Workers:  opt.Workers,
		Replicas: opt.Replicas,
		Rows:     opt.Rows,
	}

	data := dataset.Uniform(opt.Rows, 2, cfg.Seed)
	rowIdx := make([]int, data.NumRows())
	for i := range rowIdx {
		rowIdx[i] = i
	}
	hist := workload.Uniform(data.Domain(), workload.Defaults(10, 5))
	l := core.Build(data, rowIdx, data.Domain(), hist, core.Params{MinRows: opt.Rows / 16})
	store := blockstore.Materialize(l, data, blockstore.Config{GroupRows: 512})
	rep.Partitions = len(l.Parts)

	ids := make([]layout.ID, len(l.Parts))
	for i, p := range l.Parts {
		ids[i] = p.ID
	}
	seedIdx := make([]int, opt.Workers)
	for w := range seedIdx {
		seedIdx[w] = w
	}
	// Ring-placed from the start, so the join delta below is the ring's true
	// minimum and not an artifact of converting from another placement rule.
	place := membership.RingPlacement(ids, seedIdx, opt.Replicas, membership.DefaultVNodes)

	var workers []*dist.Worker
	defer func() {
		for _, wk := range workers {
			wk.Close()
		}
	}()
	addrs := make([]string, opt.Workers)
	for w := 0; w < opt.Workers; w++ {
		wk := dist.NewWorker(store, membership.HostedIDs(place, w))
		addr, err := wk.Start("127.0.0.1:0")
		if err != nil {
			return rep, err
		}
		workers = append(workers, wk)
		addrs[w] = addr
	}
	rm, err := router.NewMaster(l, data.Names())
	if err != nil {
		return rep, err
	}
	m, err := dist.NewMasterReplicated(rm, addrs, place)
	if err != nil {
		return rep, err
	}
	defer m.Close()
	mcfg := dist.DefaultConfig()
	mcfg.ResultCacheSize = 0 // cached answers would fake availability
	m.Configure(mcfg)
	reg := obs.New()
	m.SetMetrics(reg)
	if err := m.EnableMembership(dist.MembershipConfig{
		Detector: membership.Config{SuspectAfter: 5 * time.Second, DeadAfter: 20 * time.Second},
		Replicas: opt.Replicas,
	}); err != nil {
		return rep, err
	}
	maddr, err := m.Start("127.0.0.1:0")
	if err != nil {
		return rep, err
	}

	names := data.Names()
	dom := data.Domain()
	probes := []geom.Box{dom, subBox(dom, 0, 0.5), subBox(dom, 0.5, 0.45)}
	oracle := make([]int, len(probes))
	for i, b := range probes {
		oracle[i] = data.CountInBox(b, nil)
	}

	// hammer runs the probe set against the master until stopped, counting
	// answered, failed and wrong queries.
	hammer := func(stop *atomic.Bool, ev *RebalanceEvent) *sync.WaitGroup {
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				for i, b := range probes {
					resp, err := m.Query(driftSQL(names, b))
					ev.QueriesDuring++
					if err != nil {
						ev.QueryErrors++
						continue
					}
					if resp.Rows != oracle[i] {
						ev.WrongAnswers++
					}
				}
			}
		}()
		return &wg
	}
	finish := func(ev *RebalanceEvent) {
		if ev.QueriesDuring > 0 {
			ev.Availability = float64(ev.QueriesDuring-ev.QueryErrors-ev.WrongAnswers) /
				float64(ev.QueriesDuring)
		}
	}
	totalCopies := 0
	for _, ws := range place {
		totalCopies += len(ws)
	}

	// Event 1: a fresh empty worker joins over the wire and the master
	// rebalances the ring onto it.
	joinEv := RebalanceEvent{
		Event:         "join",
		WorkersBefore: opt.Workers,
		WorkersAfter:  opt.Workers + 1,
		TotalCopies:   totalCopies,
		IdealMoves:    float64(totalCopies) / float64(opt.Workers+1),
	}
	joiner := dist.NewWorker(nil, nil)
	jaddr, err := joiner.Start("127.0.0.1:0")
	if err != nil {
		return rep, err
	}
	workers = append(workers, joiner)
	hb := dist.NewHeartbeater(maddr, dist.TransportBinary)
	defer hb.Close()

	var stop atomic.Bool
	wg := hammer(&stop, &joinEv)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	jresp, err := hb.Join(ctx, -1, jaddr, membership.Checksum(nil))
	if err != nil {
		cancel()
		stop.Store(true)
		wg.Wait()
		return rep, fmt.Errorf("join: %w", err)
	}
	cancel()
	hb.Start(100 * time.Millisecond)
	t0 := time.Now()
	rr, err := m.Rebalance(context.Background(), false)
	joinEv.RebalanceMillis = time.Since(t0).Milliseconds()
	stop.Store(true)
	wg.Wait()
	if err != nil {
		return rep, fmt.Errorf("join rebalance: %w", err)
	}
	joinEv.Epoch = rr.Epoch
	joinEv.MovedPartitions = rr.MovedPartitions
	joinEv.MovedBytes = rr.MovedBytes
	joinEv.ReusedPartitions = rr.ReusedPartitions
	if joinEv.IdealMoves > 0 {
		joinEv.MoveRatio = float64(rr.MovedPartitions) / float64(totalCopies)
	}
	finish(&joinEv)
	rep.Events = append(rep.Events, joinEv)

	// Event 2: the joiner leaves gracefully; the master drains its copies
	// back onto the surviving fleet before the leave call returns. The drain
	// must ship exactly what the joiner hosted — no more.
	hosted := membership.HostedIDs(m.Placement(), jresp.Index)
	leaveEv := RebalanceEvent{
		Event:         "leave",
		WorkersBefore: opt.Workers + 1,
		WorkersAfter:  opt.Workers,
		TotalCopies:   totalCopies,
		IdealMoves:    float64(len(hosted)),
	}
	partsBefore := reg.Snapshot().Counter(dist.MetricRebalanceParts)
	bytesBefore := reg.Snapshot().Counter(dist.MetricRebalanceBytes)

	stop.Store(false)
	wg = hammer(&stop, &leaveEv)
	ctx, cancel = context.WithTimeout(context.Background(), 60*time.Second)
	t0 = time.Now()
	_, lerr := hb.Leave(ctx)
	leaveEv.RebalanceMillis = time.Since(t0).Milliseconds()
	cancel()
	stop.Store(true)
	wg.Wait()
	if lerr != nil {
		return rep, fmt.Errorf("leave: %w", lerr)
	}
	lr, err := m.Rebalance(context.Background(), false) // converged: must be a no-op
	if err != nil {
		return rep, fmt.Errorf("post-leave rebalance: %w", err)
	}
	if lr.MovedPartitions != 0 {
		return rep, fmt.Errorf("post-leave rebalance moved %d copies, want a converged no-op", lr.MovedPartitions)
	}
	snap := reg.Snapshot()
	leaveEv.Epoch = m.Epoch()
	leaveEv.MovedPartitions = int(snap.Counter(dist.MetricRebalanceParts) - partsBefore)
	leaveEv.MovedBytes = snap.Counter(dist.MetricRebalanceBytes) - bytesBefore
	if leaveEv.TotalCopies > 0 {
		leaveEv.MoveRatio = float64(leaveEv.MovedPartitions) / float64(leaveEv.TotalCopies)
	}
	finish(&leaveEv)
	rep.Events = append(rep.Events, leaveEv)
	return rep, nil
}

// subBox returns the axis-aligned sub-box of dom starting at fraction lo of
// each extent and spanning fraction size.
func subBox(dom geom.Box, lo, size float64) geom.Box {
	b := geom.Box{Lo: make(geom.Point, len(dom.Lo)), Hi: make(geom.Point, len(dom.Hi))}
	for d := range dom.Lo {
		ext := dom.Hi[d] - dom.Lo[d]
		b.Lo[d] = dom.Lo[d] + lo*ext
		b.Hi[d] = b.Lo[d] + size*ext
	}
	return b
}
