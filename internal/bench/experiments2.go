package bench

import (
	"fmt"
	"time"

	"paw/internal/adaptive"
	"paw/internal/blockstore"
	"paw/internal/cluster"
	"paw/internal/core"
	"paw/internal/descriptor"
	"paw/internal/geom"
	"paw/internal/layout"
	"paw/internal/maxskip"
	"paw/internal/placement"
	"paw/internal/tuner"
	"paw/internal/workload"
)

// pluginTables runs the two §V plugin sweeps on an existing scenario for the
// given methods: (a) precise-descriptor MBR count, (b) storage-tuner space
// budget. Used by Fig23 (PAW only, δ≠0) and Fig25 (all methods, δ=0).
func pluginTables(cfg Config, s *Scenario, methods []string, idPrefix string) []*Table {
	a := &Table{
		ID: idPrefix + "a", Title: "Precise descriptor plugin (OSM)",
		XLabel: "MBR amount", Unit: "scan ratio (% of dataset)",
		Methods: append(append([]string(nil), methods...), MLB),
	}
	allRows := descriptor.AllRows(s.Data.NumRows())
	lb := 100 * layout.LowerBoundRatio(s.Data, s.lbQueries())
	for _, nmbr := range []int{1, 3, 6, 10, 20, 50, 100} {
		row := map[string]float64{MLB: lb}
		for _, m := range methods {
			l := s.Layout(m)
			if _, err := descriptor.Install(l, s.Data, allRows, nmbr); err != nil {
				panic(err) // nmbr >= 1 by construction
			}
			row[m] = 100 * l.ScanRatio(s.Fut.Boxes(), nil)
			descriptor.Uninstall(l)
		}
		a.AddRow(fmt.Sprintf("%d", nmbr), row)
	}
	b := &Table{
		ID: idPrefix + "b", Title: "Storage tuner plugin (OSM)",
		XLabel: "redundant space (% of dataset)", Unit: "scan ratio (% of dataset)",
		Methods: append(append([]string(nil), methods...), MLB),
		Notes:   []string{"extra partitions are selected against the worst-case workload Q*F (§V-B)"},
	}
	ext := s.Hist.Extend(s.Delta).Boxes()
	for _, frac := range []float64{0, 0.01, 0.02, 0.05, 0.10, 0.20} {
		row := map[string]float64{MLB: lb}
		budget := int64(float64(s.Data.TotalBytes()) * frac)
		for _, m := range methods {
			l := s.Layout(m)
			extras := tuner.Select(l, s.Data, ext, budget)
			row[m] = 100 * l.ScanRatio(s.Fut.Boxes(), extras)
		}
		b.AddRow(fmt.Sprintf("%.0f", frac*100), row)
	}
	return []*Table{a, b}
}

// Fig23 reproduces Figure 23: the plugin modules on OSM with the default δ,
// PAW only.
func Fig23(cfg Config) []*Table {
	return pluginTables(cfg, osmScenario(cfg), []string{MPAW}, "fig23")
}

// Fig25 reproduces Figure 25: the plugin modules on OSM at δ=0, for all
// methods.
func Fig25(cfg Config) []*Table {
	data := cfg.osm()
	hist := workload.Uniform(data.Domain(), cfg.genParams(cfg.NumQueries/2, cfg.Seed+17))
	s := NewScenario(cfg, data, hist, 0, cfg.Seed+19)
	tables := pluginTables(cfg, s, []string{MQdTree, MKdTree, MPAW}, "fig25")
	for _, t := range tables {
		t.Title += " at δ=0"
	}
	return tables
}

// Fig24 reproduces Figure 24: the δ=0 special case (§VI-G) re-runs of the
// dimension, query-range, workload-size and distribution sweeps on TPC-H.
func Fig24(cfg Config) []*Table {
	zero := cfg
	zero.DeltaFrac = 0

	a := &Table{
		ID: "fig24a", Title: "δ=0: varying #dims (TPC-H)",
		XLabel: "#dims", Unit: "scan ratio (% of dataset)", Methods: stdMethods,
	}
	for dims := 2; dims <= 7; dims++ {
		c := zero
		c.Dims = dims
		a.AddRow(fmt.Sprintf("%d", dims), tpchScenario(c).MeasureAll(stdMethods))
	}

	b := &Table{
		ID: "fig24b", Title: "δ=0: varying the maximal query range γ (TPC-H)",
		XLabel: "γ (% of domain)", Unit: "scan ratio (% of dataset)", Methods: stdMethods,
	}
	for _, gamma := range []float64{0.01, 0.02, 0.05, 0.10, 0.20, 0.50} {
		c := zero
		c.GammaFrac = gamma
		b.AddRow(fmt.Sprintf("%.0f", gamma*100), tpchScenario(c).MeasureAll(stdMethods))
	}

	cTab := &Table{
		ID: "fig24c", Title: "δ=0: varying the workload size (TPC-H)",
		XLabel: "#queries (QH)", Unit: "scan ratio (% of dataset)", Methods: stdMethods,
	}
	for _, n := range []int{20, 50, 100, 200, 500, 1000, 2000} {
		c := zero
		c.NumQueries = 2 * n
		cTab.AddRow(fmt.Sprintf("%d", n), tpchScenario(c).MeasureAll(stdMethods))
	}

	d := &Table{
		ID: "fig24d", Title: "δ=0: uniform vs skewed workload (TPC-H)",
		XLabel: "workload", Unit: "scan ratio (% of dataset)", Methods: stdMethods,
	}
	for _, kind := range []string{"uniform", "skewed"} {
		data := zero.tpch()
		var hist workload.Workload
		if kind == "uniform" {
			hist = workload.Uniform(data.Domain(), zero.genParams(zero.NumQueries/2, zero.Seed+11))
		} else {
			hist = workload.Skewed(data.Domain(), zero.genParams(zero.NumQueries/2, zero.Seed+11))
		}
		s := NewScenario(zero, data, hist, 0, zero.Seed+13)
		d.AddRow(kind, s.MeasureAll(stdMethods))
	}
	return []*Table{a, b, cTab, d}
}

// AblationAlpha sweeps the Ψ-policy constant α (Eq. 4): small α tries the
// expensive Multi-Group Split deeper in the tree.
func AblationAlpha(cfg Config) []*Table {
	t := &Table{
		ID: "ablation_alpha", Title: "Ψ-policy constant α (TPC-H)",
		XLabel: "α", Unit: "scan ratio (% of dataset)",
		Methods: []string{MPAW, MLB, "partitions", "irregular"},
	}
	data := cfg.tpch()
	hist := workload.Uniform(data.Domain(), cfg.genParams(cfg.NumQueries/2, cfg.Seed+11))
	delta := deltaAbs(data.Domain(), cfg.DeltaFrac)
	base := NewScenario(cfg, data, hist, delta, cfg.Seed+13)
	lb := 100 * layout.LowerBoundRatio(data, base.lbQueries())
	for _, alpha := range []float64{2, 4, 8, 16, 32, 64} {
		l := buildPAWAlpha(base, alpha)
		irr := 0
		for _, p := range l.Parts {
			if p.Desc.Kind() == layout.KindIrregular {
				irr++
			}
		}
		t.AddRow(fmt.Sprintf("%g", alpha), map[string]float64{
			MPAW:         100 * l.ScanRatio(base.Fut.Boxes(), nil),
			MLB:          lb,
			"partitions": float64(l.NumPartitions()),
			"irregular":  float64(irr),
		})
	}
	return []*Table{t}
}

// AblationMultiGroup compares full PAW against rectangles-only PAW across δ,
// isolating the irregular-partition contribution.
func AblationMultiGroup(cfg Config) []*Table {
	t := &Table{
		ID: "ablation_multigroup", Title: "Multi-Group Split on/off across δ (TPC-H)",
		XLabel: "δ (% of domain)", Unit: "scan ratio (% of dataset)",
		Methods: []string{MPAW, MPAWRect, MLB},
	}
	for _, df := range []float64{0, 0.005, 0.01, 0.02, 0.05} {
		c := cfg
		c.DeltaFrac = df
		s := tpchScenario(c)
		t.AddRow(fmt.Sprintf("%g", df*100), s.MeasureAll([]string{MPAW, MPAWRect, MLB}))
	}
	return []*Table{t}
}

// BaselineMaxSkip positions the MaxSkip-style feature clustering (Sun et
// al., the paper's [28]) on the overfitting spectrum: near-optimal on its
// training workload, collapsed on δ-similar future workloads.
func BaselineMaxSkip(cfg Config) []*Table {
	t := &Table{
		ID: "baseline_maxskip", Title: "MaxSkip feature clustering vs Qd-tree vs PAW (TPC-H)",
		XLabel: "workload", Unit: "scan ratio (% of dataset)",
		Methods: []string{"MaxSkip", MQdTree, MPAW, MLB},
		Notes:   []string{"MaxSkip skips via per-partition query-incidence vectors; future queries fall back to MBR pruning"},
	}
	s := tpchScenario(cfg)
	ms := maxskip.Build(s.Data, s.Sample, s.Hist.Boxes(), maxskip.Params{MinRows: s.MinRows})
	for _, kind := range []string{"historical", "future"} {
		boxes := s.Hist.Boxes()
		if kind == "future" {
			boxes = s.Fut.Boxes()
		}
		lbBoxes := boxes
		if cfg.MaxLBQueries > 0 && len(lbBoxes) > cfg.MaxLBQueries {
			lbBoxes = lbBoxes[:cfg.MaxLBQueries]
		}
		t.AddRow(kind, map[string]float64{
			"MaxSkip": 100 * ms.ScanRatio(boxes, nil),
			MQdTree:   100 * s.Layout(MQdTree).ScanRatio(boxes, nil),
			MPAW:      100 * s.Layout(MPAW).ScanRatio(boxes, nil),
			MLB:       100 * layout.LowerBoundRatio(s.Data, lbBoxes),
		})
	}
	return []*Table{t}
}

// BaselineAdaptive reproduces the §II-A argument against adaptive
// repartitioning (AQWA/Amoeba style) in the bounded-variance scenario:
// cumulative cost (scan + repartitioning I/O) over a stream of δ-similar
// future batches, for the adaptive scheme vs the static PAW and Qd-tree
// layouts built once from the history.
func BaselineAdaptive(cfg Config) []*Table {
	t := &Table{
		ID: "baseline_adaptive", Title: "Adaptive repartitioning vs static layouts (TPC-H)",
		XLabel: "future batch", Unit: "cumulative MB (scan + repartition I/O)",
		Methods: []string{"Adaptive", MQdTree, MPAW},
		Notes:   []string{"adaptive pays repartition writes; static methods were built once from the history"},
	}
	s := tpchScenario(cfg)
	ad := adaptive.New(s.Data, adaptive.Params{MinRows: s.MinRows * 10}) // bmin in full-data rows
	var adCum, qdCum, pawCum int64
	// The history arrives first (warm-up for the adaptive scheme; the
	// static layouts were built from it, so they are not charged).
	for _, q := range s.Hist {
		sc, wr := ad.Query(q.Box)
		adCum += sc + wr
	}
	for batch := int64(0); batch < 10; batch++ {
		fut := workload.Future(s.Hist, s.Delta, 1, cfg.Seed+200+batch)
		for _, q := range fut {
			sc, wr := ad.Query(q.Box)
			adCum += sc + wr
		}
		qdCum += s.Layout(MQdTree).WorkloadCost(fut.Boxes(), nil)
		pawCum += s.Layout(MPAW).WorkloadCost(fut.Boxes(), nil)
		t.AddRow(fmt.Sprintf("%d", batch+1), map[string]float64{
			"Adaptive": float64(adCum) / 1e6,
			MQdTree:    float64(qdCum) / 1e6,
			MPAW:       float64(pawCum) / 1e6,
		})
	}
	return []*Table{t}
}

// Scenarios operationalises Table I / Figure 1: the three future-workload
// scenarios — exactly the history (Fig. 1a), δ-similar (Fig. 1b), and fully
// unpredictable (Fig. 1c) — against every partitioning method. The paper's
// claim is that PAW is the only method competitive in all three columns.
func Scenarios(cfg Config) []*Table {
	t := &Table{
		ID: "scenarios", Title: "The three workload scenarios of Fig. 1 / Table I (TPC-H)",
		XLabel: "future workload", Unit: "scan ratio (% of dataset)",
		Methods: []string{"MaxSkip", MQdTree, MKdTree, MPAW, MLB},
		Notes: []string{
			"PAW runs with the data-aware refinement on, as §IV-E prescribes for the unpredictable case",
			"MaxSkip extends the paper's Table I one column left: even more specialised than the Qd-tree",
		},
	}
	s := tpchScenario(cfg)
	ms := maxskip.Build(s.Data, s.Sample, s.Hist.Boxes(), maxskip.Params{MinRows: s.MinRows})
	dom := s.Data.Domain()
	futures := []struct {
		label string
		w     workload.Workload
	}{
		{"same (Fig. 1a)", s.Hist},
		{"δ-similar (Fig. 1b)", s.Fut},
		{"unpredictable (Fig. 1c)", workload.Uniform(dom, cfg.genParams(len(s.Hist), cfg.Seed+301))},
	}
	for _, f := range futures {
		boxes := f.w.Boxes()
		lbBoxes := boxes
		if cfg.MaxLBQueries > 0 && len(lbBoxes) > cfg.MaxLBQueries {
			lbBoxes = lbBoxes[:cfg.MaxLBQueries]
		}
		t.AddRow(f.label, map[string]float64{
			"MaxSkip": 100 * ms.ScanRatio(boxes, nil),
			MQdTree:   100 * s.Layout(MQdTree).ScanRatio(boxes, nil),
			MKdTree:   100 * s.Layout(MKdTree).ScanRatio(boxes, nil),
			MPAW:      100 * s.Layout(MPAWRefine).ScanRatio(boxes, nil),
			MLB:       100 * layout.LowerBoundRatio(s.Data, lbBoxes),
		})
	}
	return []*Table{t}
}

// AblationPlacement measures the workload-aware partition placement
// (future-work direction 2, implemented in internal/placement) against
// round-robin, on simulated end-to-end time.
func AblationPlacement(cfg Config) []*Table {
	t := &Table{
		ID: "ablation_placement", Title: "Partition placement: round-robin vs workload-aware (TPC-H)",
		XLabel: "layout", Unit: "avg end-to-end ms (simulated, no cache)",
		Methods: []string{"round-robin", "optimized", "improvement %"},
	}
	s := tpchScenario(cfg)
	ccfg := cluster.Defaults()
	ccfg.CacheBytes = 0 // isolate placement effects
	for _, m := range []string{MQdTree, MPAW} {
		l := s.Layout(m)
		store := blockstore.Materialize(l, s.Data, blockstore.Config{GroupRows: 512})
		route := func(q geom.Box) []layout.ID { return l.PartitionsFor(q) }
		rr, err := cluster.New(ccfg, store, l).RunWorkload(s.Fut.Boxes(), route)
		if err != nil {
			panic(err)
		}
		assign := placement.Optimize(l, s.Hist.Extend(s.Delta).Boxes(), ccfg.Workers)
		opt, err := cluster.NewWithPlacement(ccfg, store, assign).RunWorkload(s.Fut.Boxes(), route)
		if err != nil {
			panic(err)
		}
		rrMs := float64(rr.Elapsed) / 1e6
		optMs := float64(opt.Elapsed) / 1e6
		t.AddRow(m, map[string]float64{
			"round-robin":   rrMs,
			"optimized":     optMs,
			"improvement %": 100 * (1 - optMs/rrMs),
		})
	}
	return []*Table{t}
}

// AblationBeam compares greedy PAW-Construction against the beam-search
// variant the paper sketches as future work (§IV-D), across beam widths.
func AblationBeam(cfg Config) []*Table {
	t := &Table{
		ID: "ablation_beam", Title: "Greedy vs beam-search construction (TPC-H)",
		XLabel: "beam width", Unit: "scan ratio (% of dataset) / build seconds",
		Methods: []string{"scan ratio", "build (s)", "partitions"},
		Notes:   []string{"width 0 is the greedy Algorithm 3; beam keeps the better of {beam, greedy}"},
	}
	s := tpchScenario(cfg)
	dom := s.Data.Domain()
	measure := func(l *layout.Layout, secs float64) map[string]float64 {
		l.Route(s.Data)
		return map[string]float64{
			"scan ratio": 100 * l.ScanRatio(s.Fut.Boxes(), nil),
			"build (s)":  secs,
			"partitions": float64(l.NumPartitions()),
		}
	}
	start := time.Now()
	greedy := core.Build(s.Data, s.Sample, dom, s.Hist, core.Params{MinRows: s.MinRows, Delta: s.Delta, Parallelism: s.Cfg.Parallelism})
	t.AddRow("0 (greedy)", measure(greedy, time.Since(start).Seconds()))
	for _, width := range []int{2, 4, 8} {
		start = time.Now()
		l := core.BuildBeam(s.Data, s.Sample, dom, s.Hist, core.BeamParams{
			Params: core.Params{MinRows: s.MinRows, Delta: s.Delta, Parallelism: s.Cfg.Parallelism},
			Width:  width, Branch: 3,
		})
		t.AddRow(fmt.Sprintf("%d", width), measure(l, time.Since(start).Seconds()))
	}
	return []*Table{t}
}

// buildPAWAlpha builds PAW with a custom α on an existing scenario without
// disturbing its memoised layouts.
func buildPAWAlpha(s *Scenario, alpha float64) *layout.Layout {
	l := core.Build(s.Data, s.Sample, s.Data.Domain(), s.Hist, core.Params{
		MinRows: s.MinRows, Delta: s.Delta, Alpha: alpha,
	})
	l.Route(s.Data)
	return l
}
