package bench

import (
	"math/rand"
	"runtime"
	"testing"

	"paw/internal/geom"
	"paw/internal/layout"
	"paw/internal/workload"
)

// RoutingResult is one (mode, workers) cell of the routing benchmark: the
// per-query routing latency, throughput and allocation pressure, plus the
// speedup against the linear reference for the same query kind.
type RoutingResult struct {
	Mode            string  `json:"mode"`
	Workers         int     `json:"workers"`
	NsPerQuery      int64   `json:"ns_per_query"`
	QueriesPerSec   float64 `json:"queries_per_sec"`
	AllocsPerQuery  float64 `json:"allocs_per_query"`
	SpeedupVsLinear float64 `json:"speedup_vs_linear"`
}

// RoutingReport is the machine-readable routing-performance snapshot written
// to BENCH_routing.json. Speedups of the batch modes are only meaningful
// relative to the recorded GOMAXPROCS/NumCPU; the indexed-vs-linear speedups
// are single-threaded and portable.
type RoutingReport struct {
	Meta         Meta            `json:"meta"`
	GOMAXPROCS   int             `json:"gomaxprocs"`
	NumCPU       int             `json:"num_cpu"`
	Partitions   int             `json:"partitions"`
	IndexHeight  int             `json:"index_height"`
	RangeQueries int             `json:"range_queries"`
	PointQueries int             `json:"point_queries"`
	Results      []RoutingResult `json:"results"`
}

// routingGridSide is the per-dimension cell count of the benchmark layout:
// 72² = 5184 leaf partitions, past the 5k mark where linear descriptor scans
// dominate master-side routing.
const routingGridSide = 72

// routingLayout builds and seals a two-level side×side grid over the unit
// square: the root fans out to side column strips, each strip to side cells.
// Both levels exceed childIndexMinFanout, so point routing exercises the
// per-node child indexes as well as the partition-level index.
func routingLayout(side int, rowBytes int64) *layout.Layout {
	dom := geom.UnitBox(2)
	root := &layout.Node{Desc: layout.NewRect(dom)}
	w := 1.0 / float64(side)
	for i := 0; i < side; i++ {
		strip := geom.Box{Lo: geom.Point{float64(i) * w, 0}, Hi: geom.Point{float64(i+1) * w, 1}}
		sn := &layout.Node{Desc: layout.NewRect(strip)}
		for j := 0; j < side; j++ {
			cell := geom.Box{
				Lo: geom.Point{float64(i) * w, float64(j) * w},
				Hi: geom.Point{float64(i+1) * w, float64(j+1) * w},
			}
			d := layout.NewRect(cell)
			sn.Children = append(sn.Children, &layout.Node{Desc: d, Part: &layout.Partition{Desc: d}})
		}
		root.Children = append(root.Children, sn)
	}
	l := layout.Seal("bench-grid", root, rowBytes)
	for _, p := range l.Parts {
		p.FullRows = 1000
		l.TotalBytes += p.Bytes()
	}
	return l
}

// RoutingBench measures master-side query routing on a sealed ≥5k-partition
// layout: range routing through the linear reference, the sealed descriptor
// index, and the batched sweep at each worker count, plus point routing down
// the tree with and without per-node child indexes. Results are identical
// across modes (see the differential tests); only time and allocations vary.
func RoutingBench(cfg Config, workers []int) RoutingReport {
	l := routingLayout(routingGridSide, 64)
	dom := geom.UnitBox(2)
	queries := workload.Uniform(dom, cfg.genParams(2000, cfg.Seed+23)).Boxes()
	r := rand.New(rand.NewSource(cfg.Seed + 29))
	points := make([]geom.Point, 20000)
	for i := range points {
		points[i] = geom.Point{r.Float64(), r.Float64()}
	}

	rep := RoutingReport{
		Meta:         Meta{Schema: RoutingSchema},
		GOMAXPROCS:   runtime.GOMAXPROCS(0),
		NumCPU:       runtime.NumCPU(),
		Partitions:   l.NumPartitions(),
		IndexHeight:  l.IndexHeight(),
		RangeQueries: len(queries),
		PointQueries: len(points),
	}

	var sinkIDs int
	var sinkPart *layout.Partition
	measure := func(mode string, w, n int, op func()) RoutingResult {
		res := testing.Benchmark(func(tb *testing.B) {
			tb.ReportAllocs()
			for i := 0; i < tb.N; i++ {
				op()
			}
		})
		nsQ := res.NsPerOp() / int64(n)
		out := RoutingResult{
			Mode:           mode,
			Workers:        w,
			NsPerQuery:     nsQ,
			AllocsPerQuery: float64(res.AllocsPerOp()) / float64(n),
		}
		if res.NsPerOp() > 0 {
			out.QueriesPerSec = float64(n) * 1e9 / float64(res.NsPerOp())
		}
		return out
	}

	ids := make([]layout.ID, 0, l.NumPartitions())
	rangeLinear := measure("range-linear", 1, len(queries), func() {
		for _, q := range queries {
			ids = l.AppendPartitionsForLinear(ids[:0], q)
			sinkIDs += len(ids)
		}
	})
	rep.Results = append(rep.Results, rangeLinear)

	rangeIndexed := measure("range-indexed", 1, len(queries), func() {
		for _, q := range queries {
			ids = l.AppendPartitionsFor(ids[:0], q)
			sinkIDs += len(ids)
		}
	})
	rangeIndexed.SpeedupVsLinear = speedup(rangeLinear.NsPerQuery, rangeIndexed.NsPerQuery)
	rep.Results = append(rep.Results, rangeIndexed)

	for _, w := range workers {
		w := w
		res := measure("range-batch", w, len(queries), func() {
			out := l.PartitionsForBatch(queries, w)
			sinkIDs += len(out)
		})
		res.SpeedupVsLinear = speedup(rangeLinear.NsPerQuery, res.NsPerQuery)
		rep.Results = append(rep.Results, res)
	}

	pointLinear := measure("point-linear", 1, len(points), func() {
		for _, p := range points {
			sinkPart = l.LocateLinear(p)
		}
	})
	rep.Results = append(rep.Results, pointLinear)

	pointIndexed := measure("point-indexed", 1, len(points), func() {
		for _, p := range points {
			sinkPart = l.Locate(p)
		}
	})
	pointIndexed.SpeedupVsLinear = speedup(pointLinear.NsPerQuery, pointIndexed.NsPerQuery)
	rep.Results = append(rep.Results, pointIndexed)

	_ = sinkIDs
	_ = sinkPart
	return rep
}

func speedup(baseNs, ns int64) float64 {
	if baseNs <= 0 || ns <= 0 {
		return 0
	}
	return float64(baseNs) / float64(ns)
}
