package bench

import (
	"strings"
	"testing"

	"paw/internal/workload"
)

// tinyConfig keeps harness tests fast.
func tinyConfig() Config {
	c := DefaultConfig()
	c.TPCHRows = 12_000
	c.OSMRows = 10_000
	c.NumQueries = 40
	c.MaxLBQueries = 20
	return c
}

func TestDefaultConfigMatchesTableIII(t *testing.T) {
	c := DefaultConfig()
	if c.NumQueries != 100 || c.Dims != 4 || c.DeltaFrac != 0.01 ||
		c.GammaFrac != 0.10 || c.Centers != 10 || c.SigmaFrac != 0.10 {
		t.Errorf("defaults diverge from Table III: %+v", c)
	}
	if c.BlocksTarget != 600 {
		t.Errorf("blocks target %d, want 600 (75GB/128MB)", c.BlocksTarget)
	}
}

func TestMinRowsScaling(t *testing.T) {
	c := DefaultConfig()
	m := c.minRowsFor(c.TPCHRows)
	sample := c.sampleRowsFor(c.TPCHRows)
	blocks := sample / m
	if blocks < 400 || blocks > 700 {
		t.Errorf("sample/bmin = %d blocks, want ≈600", blocks)
	}
	if c.minRowsFor(10) != 2 {
		t.Errorf("tiny datasets must floor bmin at 2")
	}
}

func TestScenarioBasics(t *testing.T) {
	cfg := tinyConfig()
	s := tpchScenario(cfg)
	if len(s.Hist) != cfg.NumQueries/2 || len(s.Fut) != cfg.NumQueries/2 {
		t.Fatalf("hist=%d fut=%d", len(s.Hist), len(s.Fut))
	}
	// Future workload is δ-similar by construction.
	ok, err := workload.AreSimilar(s.Hist, s.Fut, s.Delta*(1+1e-9))
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("scenario future workload not δ-similar to history")
	}
	// Layout memoisation.
	l1 := s.Layout(MPAW)
	l2 := s.Layout(MPAW)
	if l1 != l2 {
		t.Error("Layout must memoise")
	}
}

func TestScenarioMethodOrdering(t *testing.T) {
	cfg := tinyConfig()
	s := tpchScenario(cfg)
	got := s.MeasureAll(stdMethods)
	// The paper's headline ordering on the default setting: LB <= PAW and
	// PAW < Qd-tree.
	if got[MLB] > got[MPAW]+1e-9 {
		t.Errorf("LB %v above PAW %v", got[MLB], got[MPAW])
	}
	if got[MPAW] >= got[MQdTree] {
		t.Errorf("PAW %v not below Qd-tree %v", got[MPAW], got[MQdTree])
	}
	for m, v := range got {
		if v < 0 || v > 100 {
			t.Errorf("%s ratio %v out of [0,100]", m, v)
		}
	}
}

func TestRegistryComplete(t *testing.T) {
	want := []string{
		"table2", "table4", "fig15", "fig16", "fig17", "fig18", "fig19",
		"fig20", "fig21", "fig22a", "fig22b", "fig23", "fig24", "fig25",
		"ablation_alpha", "ablation_multigroup", "ablation_beam", "baseline_maxskip", "baseline_adaptive", "ablation_placement", "scenarios",
	}
	reg := Registry()
	if len(reg) != len(want) {
		t.Fatalf("registry has %d experiments, want %d", len(reg), len(want))
	}
	for i, id := range want {
		if reg[i].ID != id {
			t.Errorf("registry[%d] = %q, want %q", i, reg[i].ID, id)
		}
		if _, ok := Find(id); !ok {
			t.Errorf("Find(%q) failed", id)
		}
	}
	if _, ok := Find("nope"); ok {
		t.Error("Find of unknown ID must fail")
	}
}

func TestTableFormatting(t *testing.T) {
	tab := &Table{
		ID: "x", Title: "T", XLabel: "p", Unit: "u",
		Methods: []string{"A", "B"},
		Notes:   []string{"n1"},
	}
	tab.AddRow("1", map[string]float64{"A": 1.5, "B": 0.0001})
	tab.AddRow("2", map[string]float64{"A": 2000})
	txt := tab.Format()
	for _, want := range []string{"x — T", "unit: u", "p", "A", "B", "1.500", "0.00010", "2000", "-", "note: n1"} {
		if !strings.Contains(txt, want) {
			t.Errorf("Format missing %q in:\n%s", want, txt)
		}
	}
	md := tab.Markdown()
	for _, want := range []string{"| p |", "| A |", "| 1 |", "---|"} {
		if !strings.Contains(md, want) {
			t.Errorf("Markdown missing %q in:\n%s", want, md)
		}
	}
}

// TestExperimentsRunTiny executes every registered experiment on a tiny
// configuration and sanity-checks the outputs. This is the harness's
// integration test; the real numbers come from cmd/pawbench.
func TestExperimentsRunTiny(t *testing.T) {
	if testing.Short() {
		t.Skip("integration sweep")
	}
	cfg := tinyConfig()
	for _, e := range Registry() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			tables := e.Run(cfg)
			if len(tables) == 0 {
				t.Fatal("experiment produced no tables")
			}
			for _, tab := range tables {
				if len(tab.Rows) == 0 {
					t.Fatalf("table %s has no rows", tab.ID)
				}
				for _, r := range tab.Rows {
					for m, v := range r.Values {
						// Delta-style columns may legitimately go negative.
						if m == "improvement %" {
							continue
						}
						if v < 0 {
							t.Errorf("table %s row %s method %s negative value %v", tab.ID, r.X, m, v)
						}
					}
				}
				if tab.Format() == "" || tab.Markdown() == "" {
					t.Error("empty rendering")
				}
			}
		})
	}
}
