package bench

import (
	"fmt"
	"time"

	"paw/internal/blockstore"
	"paw/internal/cluster"
	"paw/internal/core"
	"paw/internal/dataset"
	"paw/internal/geom"
	"paw/internal/kdtree"
	"paw/internal/layout"
	"paw/internal/qdtree"
	"paw/internal/workload"
)

// Experiment is one reproducible table/figure of the paper.
type Experiment struct {
	ID    string
	Title string
	Run   func(Config) []*Table
}

// Registry lists every experiment in paper order.
func Registry() []Experiment {
	return []Experiment{
		{"table2", "Partition construction time breakdown (3 TPC-H sizes)", Table2},
		{"table4", "Query cost at δ=0 under default settings", Table4},
		{"fig15", "Scalability on TPC-H: I/O cost and end-to-end time", Fig15},
		{"fig16", "Varying the number of query dimensions (TPC-H)", Fig16},
		{"fig17", "Varying the maximal query range (TPC-H, OSM)", Fig17},
		{"fig18", "Varying the workload size (TPC-H, OSM)", Fig18},
		{"fig19", "Varying the distance threshold δ (TPC-H, OSM)", Fig19},
		{"fig20", "Uniform vs skewed workloads (TPC-H, OSM)", Fig20},
		{"fig21", "Varying skewed workload parameters (TPC-H)", Fig21},
		{"fig22a", "Unknown distance threshold: PAW vs PAW-unknown", Fig22a},
		{"fig22b", "Mixing with random queries (data-aware PAW)", Fig22b},
		{"fig23", "Plugin modules on OSM (precise descriptors, storage tuner)", Fig23},
		{"fig24", "δ=0 sweeps (TPC-H): dims, range, workload size, distribution", Fig24},
		{"fig25", "δ=0 plugin modules on OSM, all methods", Fig25},
		{"ablation_alpha", "Ablation: the Ψ-policy constant α", AblationAlpha},
		{"ablation_multigroup", "Ablation: Multi-Group Split on/off across δ", AblationMultiGroup},
		{"ablation_beam", "Ablation: greedy vs beam-search construction", AblationBeam},
		{"baseline_maxskip", "Extra baseline: MaxSkip feature clustering", BaselineMaxSkip},
		{"baseline_adaptive", "Extra baseline: adaptive repartitioning stream", BaselineAdaptive},
		{"ablation_placement", "Ablation: workload-aware partition placement", AblationPlacement},
		{"scenarios", "The three workload scenarios of Fig. 1 / Table I", Scenarios},
	}
}

// Find returns the experiment with the given ID.
func Find(id string) (Experiment, bool) {
	for _, e := range Registry() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

var stdMethods = []string{MQdTree, MKdTree, MPAW, MLB}

// tpchScenario builds the default TPC-H scenario: uniform historical
// workload of half the configured queries, future workload δ-similar to it.
func tpchScenario(cfg Config) *Scenario {
	data := cfg.tpch()
	hist := workload.Uniform(data.Domain(), cfg.genParams(cfg.NumQueries/2, cfg.Seed+11))
	return NewScenario(cfg, data, hist, deltaAbs(data.Domain(), cfg.DeltaFrac), cfg.Seed+13)
}

// osmScenario is the OSM analogue of tpchScenario.
func osmScenario(cfg Config) *Scenario {
	data := cfg.osm()
	hist := workload.Uniform(data.Domain(), cfg.genParams(cfg.NumQueries/2, cfg.Seed+17))
	return NewScenario(cfg, data, hist, deltaAbs(data.Domain(), cfg.DeltaFrac), cfg.Seed+19)
}

// Table2 reproduces Table II: layout-generation time vs routing-and-I/O time
// for three TPC-H sizes (the paper's 8/38/75 GB, scaled 1/1000).
func Table2(cfg Config) []*Table {
	t := &Table{
		ID:      "table2",
		Title:   "Partition construction time (TPC-H at 1/1000 scale)",
		XLabel:  "method",
		Unit:    "seconds",
		Methods: []string{"layout gen (s)", "route+I/O 8GB (s)", "route+I/O 38GB (s)", "route+I/O 75GB (s)"},
		Notes: []string{
			"paper sizes 8/38/75 GB are scaled 1/1000; write throughput simulated at 120 MB/s",
			"routing+I/O dominating layout generation reproduces the paper's 90-99% observation",
		},
	}
	sizes := []struct {
		label string
		frac  float64
	}{{"8GB", 8.0 / 75}, {"38GB", 38.0 / 75}, {"75GB", 1.0}}
	for _, m := range []string{MQdTree, MKdTree, MPAW} {
		row := map[string]float64{}
		for _, sz := range sizes {
			c := cfg
			c.TPCHRows = int(float64(cfg.TPCHRows) * sz.frac)
			s := tpchScenario(c)
			// The logical layout is generated on a fixed-size sample, so
			// its time barely depends on the dataset size (the paper's
			// observation); report it for the full-size run.
			start := time.Now()
			l := buildUnrouted(s, m)
			genTime := time.Since(start)
			store := blockstore.Materialize(l, s.Data, blockstore.Config{})
			if sz.label == "75GB" {
				row["layout gen (s)"] = genTime.Seconds()
			}
			row[fmt.Sprintf("route+I/O %s (s)", sz.label)] = (store.RoutingTime + store.SimWriteTime).Seconds()
		}
		t.AddRow(m, row)
	}
	return []*Table{t}
}

// buildUnrouted builds a method's layout without routing, for pure
// layout-generation timing.
func buildUnrouted(s *Scenario, method string) *layout.Layout {
	dom := s.Data.Domain()
	switch method {
	case MQdTree:
		return qdtree.Build(s.Data, s.Sample, dom, s.Hist.Boxes(), qdtree.Params{MinRows: s.MinRows, Parallelism: s.Cfg.Parallelism})
	case MKdTree:
		return kdtree.Build(s.Data, s.Sample, dom, kdtree.Params{MinRows: s.MinRows, Parallelism: s.Cfg.Parallelism})
	case MPAW:
		return core.Build(s.Data, s.Sample, dom, s.Hist, core.Params{MinRows: s.MinRows, Delta: s.Delta, Parallelism: s.Cfg.Parallelism})
	default:
		panic(fmt.Sprintf("bench: unknown method %q", method))
	}
}

// Table4 reproduces Table IV: I/O cost and end-to-end time at δ=0 under the
// default setting.
func Table4(cfg Config) []*Table {
	data := cfg.tpch()
	hist := workload.Uniform(data.Domain(), cfg.genParams(cfg.NumQueries/2, cfg.Seed+11))
	s := NewScenario(cfg, data, hist, 0, cfg.Seed+13)
	tIO := &Table{
		ID: "table4", Title: "Query cost at δ=0, default settings",
		XLabel: "measure", Methods: []string{MKdTree, MQdTree, MPAW},
		Notes: []string{"paper: 0.81 / 0.18 / 0.15 GB and 3.11 / 0.63 / 0.50 s on 75 GB"},
	}
	io := map[string]float64{}
	e2e := map[string]float64{}
	for _, m := range []string{MKdTree, MQdTree, MPAW} {
		l := s.Layout(m)
		ioMB, ms := endToEnd(l, s.Data, s.Fut.Boxes())
		io[m] = ioMB
		e2e[m] = ms
	}
	tIO.AddRow("I/O cost (MB, scaled)", io)
	tIO.AddRow("end-to-end time (ms, simulated)", e2e)
	return []*Table{tIO}
}

// endToEnd materialises the layout and runs the workload on the simulated
// cluster, returning (avg nominal I/O per query in MB, avg elapsed in ms).
func endToEnd(l *layout.Layout, data *dataset.Dataset, queries []geom.Box) (float64, float64) {
	store := blockstore.Materialize(l, data, blockstore.Config{GroupRows: 512})
	c := cluster.New(cluster.Defaults(), store, l)
	avg, err := c.RunWorkload(queries, func(q geom.Box) []layout.ID { return l.PartitionsFor(q) })
	if err != nil {
		panic(err) // unreachable: partitions come from the same layout
	}
	return float64(avg.BytesNominal) / 1e6, float64(avg.Elapsed) / float64(time.Millisecond)
}

// Fig15 reproduces Figure 15: average I/O cost and end-to-end time while
// varying the TPC-H size.
func Fig15(cfg Config) []*Table {
	a := &Table{
		ID: "fig15a", Title: "Average I/O cost, varying TPC-H size",
		XLabel: "TPC-H size", Unit: "MB per query (scaled 1/1000)",
		Methods: []string{MQdTree, MKdTree, MPAW},
	}
	b := &Table{
		ID: "fig15b", Title: "Average end-to-end time, varying TPC-H size",
		XLabel: "TPC-H size", Unit: "ms per query (simulated cluster)",
		Methods: []string{MQdTree, MKdTree, MPAW},
	}
	for _, sz := range []struct {
		label string
		frac  float64
	}{{"8GB", 8.0 / 75}, {"38GB", 38.0 / 75}, {"75GB", 1.0}} {
		c := cfg
		c.TPCHRows = int(float64(cfg.TPCHRows) * sz.frac)
		s := tpchScenario(c)
		rowIO := map[string]float64{}
		rowT := map[string]float64{}
		for _, m := range []string{MQdTree, MKdTree, MPAW} {
			ioMB, ms := endToEnd(s.Layout(m), s.Data, s.Fut.Boxes())
			rowIO[m] = ioMB
			rowT[m] = ms
		}
		a.AddRow(sz.label, rowIO)
		b.AddRow(sz.label, rowT)
	}
	return []*Table{a, b}
}

// Fig16 reproduces Figure 16: scan ratio while varying the number of query
// dimensions on TPC-H.
func Fig16(cfg Config) []*Table {
	t := &Table{
		ID: "fig16", Title: "Varying the number of query dimensions (TPC-H)",
		XLabel: "#dims", Unit: "scan ratio (% of dataset)", Methods: stdMethods,
	}
	for dims := 2; dims <= 7; dims++ {
		c := cfg
		c.Dims = dims
		s := tpchScenario(c)
		t.AddRow(fmt.Sprintf("%d", dims), s.MeasureAll(stdMethods))
	}
	return []*Table{t}
}

// Fig17 reproduces Figure 17: scan ratio while varying the maximal query
// range γ, on TPC-H and OSM.
func Fig17(cfg Config) []*Table {
	var out []*Table
	for _, ds := range []string{"TPC-H", "OSM"} {
		t := &Table{
			ID: "fig17-" + ds, Title: "Varying the maximal query range (" + ds + ")",
			XLabel: "γ (% of domain)", Unit: "scan ratio (% of dataset)", Methods: stdMethods,
		}
		for _, gamma := range []float64{0.01, 0.02, 0.05, 0.10, 0.20, 0.50} {
			c := cfg
			c.GammaFrac = gamma
			var s *Scenario
			if ds == "TPC-H" {
				s = tpchScenario(c)
			} else {
				s = osmScenario(c)
			}
			t.AddRow(fmt.Sprintf("%.0f", gamma*100), s.MeasureAll(stdMethods))
		}
		out = append(out, t)
	}
	return out
}

// Fig18 reproduces Figure 18: scan ratio while varying the historical
// workload size, on TPC-H and OSM. The paper sweeps 20..10000 queries; the
// default harness caps at 2000 to keep the exact bipartite machinery and
// Qd-tree builds fast (override Config.NumQueries upstream for more).
func Fig18(cfg Config) []*Table {
	var out []*Table
	for _, ds := range []string{"TPC-H", "OSM"} {
		t := &Table{
			ID: "fig18-" + ds, Title: "Varying the workload size (" + ds + ")",
			XLabel: "#queries (QH)", Unit: "scan ratio (% of dataset)", Methods: stdMethods,
			Notes: []string{"paper sweeps to 10000 queries; harness default caps at 2000"},
		}
		for _, n := range []int{20, 50, 100, 200, 500, 1000, 2000} {
			c := cfg
			c.NumQueries = 2 * n
			var s *Scenario
			if ds == "TPC-H" {
				s = tpchScenario(c)
			} else {
				s = osmScenario(c)
			}
			t.AddRow(fmt.Sprintf("%d", n), s.MeasureAll(stdMethods))
		}
		out = append(out, t)
	}
	return out
}

// Fig19 reproduces Figure 19: scan ratio while varying the distance
// threshold δ, on TPC-H and OSM.
func Fig19(cfg Config) []*Table {
	var out []*Table
	for _, ds := range []string{"TPC-H", "OSM"} {
		t := &Table{
			ID: "fig19-" + ds, Title: "Varying the distance threshold δ (" + ds + ")",
			XLabel: "δ (% of domain)", Unit: "scan ratio (% of dataset)", Methods: stdMethods,
		}
		for _, df := range []float64{0.001, 0.002, 0.005, 0.01, 0.02, 0.05, 0.10, 0.20} {
			c := cfg
			c.DeltaFrac = df
			var s *Scenario
			if ds == "TPC-H" {
				s = tpchScenario(c)
			} else {
				s = osmScenario(c)
			}
			t.AddRow(fmt.Sprintf("%g", df*100), s.MeasureAll(stdMethods))
		}
		out = append(out, t)
	}
	return out
}

// Fig20 reproduces Figure 20: uniform vs skewed workloads on both datasets.
func Fig20(cfg Config) []*Table {
	var out []*Table
	for _, ds := range []string{"TPC-H", "OSM"} {
		t := &Table{
			ID: "fig20-" + ds, Title: "Uniform vs skewed workload (" + ds + ")",
			XLabel: "workload", Unit: "scan ratio (% of dataset)", Methods: stdMethods,
		}
		for _, kind := range []string{"uniform", "skewed"} {
			var data *dataset.Dataset
			if ds == "TPC-H" {
				data = cfg.tpch()
			} else {
				data = cfg.osm()
			}
			var hist workload.Workload
			if kind == "uniform" {
				hist = workload.Uniform(data.Domain(), cfg.genParams(cfg.NumQueries/2, cfg.Seed+11))
			} else {
				hist = workload.Skewed(data.Domain(), cfg.genParams(cfg.NumQueries/2, cfg.Seed+11))
			}
			s := NewScenario(cfg, data, hist, deltaAbs(data.Domain(), cfg.DeltaFrac), cfg.Seed+13)
			t.AddRow(kind, s.MeasureAll(stdMethods))
		}
		out = append(out, t)
	}
	return out
}

// Fig21 reproduces Figure 21: skewed-workload parameters on TPC-H —
// (a) the number of query centers #C, (b) the standard deviation σ.
func Fig21(cfg Config) []*Table {
	a := &Table{
		ID: "fig21a", Title: "Varying the number of query centers #C (TPC-H, skewed)",
		XLabel: "#C", Unit: "scan ratio (% of dataset)", Methods: stdMethods,
	}
	for _, centers := range []int{5, 10, 20, 50} {
		c := cfg
		c.Centers = centers
		data := c.tpch()
		hist := workload.Skewed(data.Domain(), c.genParams(c.NumQueries/2, c.Seed+11))
		s := NewScenario(c, data, hist, deltaAbs(data.Domain(), c.DeltaFrac), c.Seed+13)
		a.AddRow(fmt.Sprintf("%d", centers), s.MeasureAll(stdMethods))
	}
	b := &Table{
		ID: "fig21b", Title: "Varying the standard deviation σ (TPC-H, skewed)",
		XLabel: "σ (% of γ)", Unit: "scan ratio (% of dataset)", Methods: stdMethods,
	}
	for _, sigma := range []float64{0.10, 0.20, 0.50, 1.00} {
		c := cfg
		c.SigmaFrac = sigma
		data := c.tpch()
		hist := workload.Skewed(data.Domain(), c.genParams(c.NumQueries/2, c.Seed+11))
		s := NewScenario(c, data, hist, deltaAbs(data.Domain(), c.DeltaFrac), c.Seed+13)
		b.AddRow(fmt.Sprintf("%.0f", sigma*100), s.MeasureAll(stdMethods))
	}
	return []*Table{a, b}
}

// Fig22a reproduces Figure 22a: PAW with the true δ vs PAW-unknown (δ′
// estimated per §IV-E), on uniform and skewed TPC-H workloads.
func Fig22a(cfg Config) []*Table {
	t := &Table{
		ID: "fig22a", Title: "Unknown distance threshold (TPC-H)",
		XLabel: "workload", Unit: "scan ratio (% of dataset)",
		Methods: []string{MPAW, MPAWUnknown, MLB},
	}
	for _, kind := range []string{"uniform", "skewed"} {
		data := cfg.tpch()
		var hist workload.Workload
		if kind == "uniform" {
			hist = workload.Uniform(data.Domain(), cfg.genParams(cfg.NumQueries/2, cfg.Seed+11))
		} else {
			hist = workload.Skewed(data.Domain(), cfg.genParams(cfg.NumQueries/2, cfg.Seed+11))
		}
		s := NewScenario(cfg, data, hist, deltaAbs(data.Domain(), cfg.DeltaFrac), cfg.Seed+13)
		t.AddRow(kind, s.MeasureAll([]string{MPAW, MPAWUnknown, MLB}))
	}
	return []*Table{t}
}

// Fig22b reproduces Figure 22b: the future workload is mixed with X% random
// queries; PAW runs with the data-aware optimisation on (§IV-E).
func Fig22b(cfg Config) []*Table {
	methods := []string{MQdTree, MKdTree, MPAWRefine, MLB}
	t := &Table{
		ID: "fig22b", Title: "Mixing the future workload with random queries (TPC-H)",
		XLabel: "random %", Unit: "scan ratio (% of dataset)",
		Methods: []string{MQdTree, MKdTree, MPAW, MLB},
		Notes:   []string{"PAW runs with the data-aware refinement of §IV-E enabled"},
	}
	s := tpchScenario(cfg)
	dom := s.Data.Domain()
	for _, pct := range []float64{0, 10, 20, 30, 40, 50, 75, 100} {
		mixed := workload.MixRandom(s.Fut, dom, pct, cfg.GammaFrac, cfg.Seed+int64(pct))
		row := map[string]float64{}
		for _, m := range methods {
			label := m
			if m == MPAWRefine {
				label = MPAW
			}
			if m == MLB {
				boxes := mixed.Boxes()
				if cfg.MaxLBQueries > 0 && len(boxes) > cfg.MaxLBQueries {
					boxes = boxes[:cfg.MaxLBQueries]
				}
				row[label] = 100 * layout.LowerBoundRatio(s.Data, boxes)
				continue
			}
			row[label] = 100 * s.Layout(m).ScanRatio(mixed.Boxes(), nil)
		}
		t.AddRow(fmt.Sprintf("%.0f", pct), row)
	}
	return []*Table{t}
}
