// Package bench is the experiment harness: one runnable experiment per table
// and figure of the paper's evaluation (§VI), each regenerating the same
// rows/series the paper reports, at 1/1000 of the paper's physical scale.
//
// Scaling: the paper's TPC-H table is 600 M rows / 75 GB with 128 MB HDFS
// blocks (≈600 blocks); this harness defaults to 120 k rows with bmin chosen
// to keep the same ≈600-block ratio. All headline metrics are scan ratios
// (% of dataset), which are invariant to this uniform scaling.
package bench

import (
	"paw/internal/dataset"
	"paw/internal/geom"
	"paw/internal/workload"
)

// Config are the harness-wide knobs; DefaultConfig mirrors Table III.
type Config struct {
	// TPCHRows is the scaled row count standing in for the paper's 75 GB
	// (600 M row) lineitem table.
	TPCHRows int
	// OSMRows is the scaled row count standing in for the 100 M-row OSM
	// extract.
	OSMRows int
	// SampleFrac is the fraction of rows used to generate logical layouts
	// (the paper samples 6 M of 600 M = 1%; at our scale a larger fraction
	// keeps per-partition sample counts meaningful).
	SampleFrac float64
	// BlocksTarget sets bmin so the dataset occupies about this many
	// minimum-size blocks (the paper's 75 GB / 128 MB ≈ 600).
	BlocksTarget int
	// NumQueries is #Q, the total query count; half historical, half
	// future (Table III's default 100).
	NumQueries int
	// Dims is the number of query dimensions (TPC-H experiments).
	Dims int
	// DeltaFrac is δ as a fraction of the domain length (default 1%).
	DeltaFrac float64
	// GammaFrac is γ, the maximal query range (default 10%).
	GammaFrac float64
	// Centers is #C for the skewed generator (default 10).
	Centers int
	// SigmaFrac is σ as a fraction of γ (default 10%).
	SigmaFrac float64
	// MaxLBQueries caps how many future queries the exact lower bound is
	// computed over (it is a full scan per query).
	MaxLBQueries int
	// Parallelism bounds the layout-construction worker pool (0 = all
	// cores, 1 = serial). Layouts are identical at any setting; only
	// construction time changes.
	Parallelism int
	// Seed drives every generator.
	Seed int64
}

// DefaultConfig returns the Table III defaults at 1/1000 scale.
func DefaultConfig() Config {
	return Config{
		TPCHRows:     120_000,
		OSMRows:      100_000,
		SampleFrac:   0.10,
		BlocksTarget: 600,
		NumQueries:   100,
		Dims:         4,
		DeltaFrac:    0.01,
		GammaFrac:    0.10,
		Centers:      10,
		SigmaFrac:    0.10,
		MaxLBQueries: 200,
		Seed:         20220501,
	}
}

// genParams converts the config into workload-generator parameters for n
// queries.
func (c Config) genParams(n int, seed int64) workload.GenParams {
	return workload.GenParams{
		NumQueries:   n,
		MaxRangeFrac: c.GammaFrac,
		Centers:      c.Centers,
		SigmaFrac:    c.SigmaFrac,
		Seed:         seed,
	}
}

// tpch builds the TPC-H stand-in projected to the configured query
// dimensions and normalized to [0,1] per dimension (δ is an L∞ threshold
// across dimensions, so scales must be commensurable).
func (c Config) tpch() *dataset.Dataset {
	return dataset.TPCHLike(c.TPCHRows, c.Seed).Project(c.Dims).Normalize()
}

// osm builds the OSM stand-in (always 2-d), normalized like tpch.
func (c Config) osm() *dataset.Dataset {
	return dataset.OSMLike(c.OSMRows, 12, c.Seed+1).Normalize()
}

// minRowsFor returns bmin in sample rows for a dataset of n rows sampled at
// SampleFrac, targeting BlocksTarget blocks.
func (c Config) minRowsFor(n int) int {
	sample := int(float64(n) * c.SampleFrac)
	m := sample / c.BlocksTarget
	if m < 2 {
		m = 2
	}
	return m
}

// sampleRowsFor returns the sample size for a dataset of n rows.
func (c Config) sampleRowsFor(n int) int {
	s := int(float64(n) * c.SampleFrac)
	if s < 100 {
		s = 100
	}
	return s
}

// deltaAbs converts DeltaFrac into absolute units on the given domain (the
// paper expresses δ as a percentage of the domain length).
func deltaAbs(domain geom.Box, frac float64) float64 {
	return frac * (domain.Hi[0] - domain.Lo[0])
}
