package bench

import "testing"

// The rebalance benchmark drives the full elastic lifecycle on a live
// cluster; its acceptance contract doubles as a regression gate: the join
// moves close to the consistent-hash ideal, the leave drains everything it
// hosted, and the oracle-checked availability stays at 1.0 — the cluster
// never answers wrong mid-move.
func TestRebalanceBench(t *testing.T) {
	if testing.Short() {
		t.Skip("rebalance bench drives a live cluster")
	}
	cfg := tinyConfig()
	rep, err := RebalanceBench(cfg, RebalanceOptions{Rows: 3000})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Meta.Schema != RebalanceSchema {
		t.Fatalf("schema = %q, want %q", rep.Meta.Schema, RebalanceSchema)
	}
	if len(rep.Events) != 2 || rep.Events[0].Event != "join" || rep.Events[1].Event != "leave" {
		t.Fatalf("events = %+v, want [join leave]", rep.Events)
	}
	for _, ev := range rep.Events {
		if ev.MovedPartitions <= 0 || ev.MovedBytes <= 0 {
			t.Errorf("%s: nothing moved: %+v", ev.Event, ev)
		}
		if ev.QueriesDuring == 0 {
			t.Errorf("%s: no concurrent queries observed", ev.Event)
		}
		if ev.WrongAnswers != 0 {
			t.Errorf("%s: %d wrong answers during the move", ev.Event, ev.WrongAnswers)
		}
		if ev.Availability < 1 {
			t.Errorf("%s: availability %.4f, want 1.0 (errors %d, wrong %d)",
				ev.Event, ev.Availability, ev.QueryErrors, ev.WrongAnswers)
		}
	}
	join := rep.Events[0]
	// The minimal-movement bound, mirroring the dist-layer test: the ring
	// ships about total/(N+1) copies; 2.5x covers vnode skew.
	if bound := int(join.IdealMoves*2.5) + 1; join.MovedPartitions > bound {
		t.Errorf("join moved %d copies, want <= %d (ideal %.1f)",
			join.MovedPartitions, bound, join.IdealMoves)
	}
	leave := rep.Events[1]
	if float64(leave.MovedPartitions) != leave.IdealMoves {
		t.Errorf("leave moved %d copies, want exactly the %d it hosted",
			leave.MovedPartitions, int(leave.IdealMoves))
	}
}
