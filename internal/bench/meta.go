package bench

// Schema identifiers for the machine-readable benchmark artifacts. Bump the
// trailing version when a report's shape changes incompatibly so downstream
// tooling (CI trend charts, pawcli stats) can dispatch on it.
const (
	ConstructionSchema = "paw/bench-construction/v1"
	RoutingSchema      = "paw/bench-routing/v1"
	ScanSchema         = "paw/bench-scan/v1"
)

// Meta identifies one benchmark artifact: which schema it follows, which
// build of the code produced it, and when. BuildInfo and GeneratedAt are
// supplied by the caller (cmd/pawbench stamps them from the VCS build info
// and the wall clock) — this package never reads ambient state, so library
// callers and tests stay deterministic.
type Meta struct {
	Schema      string `json:"schema"`
	BuildInfo   string `json:"build_info,omitempty"`
	GeneratedAt string `json:"generated_at,omitempty"`
}
