package bench

import "runtime"

// Schema identifiers for the machine-readable benchmark artifacts. Bump the
// trailing version when a report's shape changes incompatibly so downstream
// tooling (CI trend charts, pawcli stats) can dispatch on it.
const (
	ConstructionSchema = "paw/bench-construction/v1"
	RoutingSchema      = "paw/bench-routing/v1"
	ScanSchema         = "paw/bench-scan/v1"
	ServingSchema      = "paw/bench-serving/v1"
	DriftSchema        = "paw/bench-drift/v1"
	RebalanceSchema    = "paw/bench-rebalance/v1"
)

// Host identifies the machine and toolchain a benchmark artifact was
// measured on — numbers from hosts with different core counts or Go
// versions are not comparable, so every BENCH_*.json carries this block.
type Host struct {
	GOMAXPROCS int    `json:"gomaxprocs"`
	NumCPU     int    `json:"num_cpu"`
	GoVersion  string `json:"go_version"`
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
}

// CurrentHost snapshots the running process's host metadata. Called by
// cmd/pawbench when stamping a report; the bench functions themselves never
// read ambient state.
func CurrentHost() Host {
	return Host{
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
	}
}

// Meta identifies one benchmark artifact: which schema it follows, which
// build of the code produced it, when, and on what host. BuildInfo,
// GeneratedAt and Host are supplied by the caller (cmd/pawbench stamps them
// from the VCS build info, the wall clock and the runtime) — this package
// never reads ambient state, so library callers and tests stay
// deterministic.
type Meta struct {
	Schema      string `json:"schema"`
	BuildInfo   string `json:"build_info,omitempty"`
	GeneratedAt string `json:"generated_at,omitempty"`
	Host        Host   `json:"host"`
}
