package bench

import (
	"fmt"
	"strings"
)

// Table is one reproduced table or figure series, printable in a paper-like
// layout: one row per x-axis value, one column per method.
type Table struct {
	// ID matches the DESIGN.md experiment index (e.g. "fig16").
	ID string
	// Title describes the experiment.
	Title string
	// XLabel names the varied parameter.
	XLabel string
	// Unit names the measured quantity.
	Unit string
	// Methods is the column order.
	Methods []string
	// Rows are the data points in x order.
	Rows []TableRow
	// Notes carry any scaling caveats.
	Notes []string
}

// TableRow is one x-axis point.
type TableRow struct {
	X      string
	Values map[string]float64
}

// AddRow appends a data point.
func (t *Table) AddRow(x string, values map[string]float64) {
	t.Rows = append(t.Rows, TableRow{X: x, Values: values})
}

// Format renders the table as aligned text.
func (t *Table) Format() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s — %s\n", t.ID, t.Title)
	if t.Unit != "" {
		fmt.Fprintf(&sb, "unit: %s\n", t.Unit)
	}
	widths := make([]int, len(t.Methods)+1)
	widths[0] = len(t.XLabel)
	for _, r := range t.Rows {
		if len(r.X) > widths[0] {
			widths[0] = len(r.X)
		}
	}
	cells := make([][]string, len(t.Rows))
	for i, r := range t.Rows {
		cells[i] = make([]string, len(t.Methods))
		for j, m := range t.Methods {
			v, ok := r.Values[m]
			s := "-"
			if ok {
				s = formatValue(v)
			}
			cells[i][j] = s
			if len(s) > widths[j+1] {
				widths[j+1] = len(s)
			}
		}
	}
	for j, m := range t.Methods {
		if len(m) > widths[j+1] {
			widths[j+1] = len(m)
		}
	}
	fmt.Fprintf(&sb, "%-*s", widths[0], t.XLabel)
	for j, m := range t.Methods {
		fmt.Fprintf(&sb, "  %*s", widths[j+1], m)
	}
	sb.WriteByte('\n')
	for i, r := range t.Rows {
		fmt.Fprintf(&sb, "%-*s", widths[0], r.X)
		for j := range t.Methods {
			fmt.Fprintf(&sb, "  %*s", widths[j+1], cells[i][j])
		}
		sb.WriteByte('\n')
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&sb, "note: %s\n", n)
	}
	return sb.String()
}

// Markdown renders the table as a GitHub-flavoured markdown table.
func (t *Table) Markdown() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "**%s — %s**", t.ID, t.Title)
	if t.Unit != "" {
		fmt.Fprintf(&sb, " _(%s)_", t.Unit)
	}
	sb.WriteString("\n\n")
	fmt.Fprintf(&sb, "| %s |", t.XLabel)
	for _, m := range t.Methods {
		fmt.Fprintf(&sb, " %s |", m)
	}
	sb.WriteString("\n|")
	for range t.Methods {
		sb.WriteString("---|")
	}
	sb.WriteString("---|\n")
	for _, r := range t.Rows {
		fmt.Fprintf(&sb, "| %s |", r.X)
		for _, m := range t.Methods {
			if v, ok := r.Values[m]; ok {
				fmt.Fprintf(&sb, " %s |", formatValue(v))
			} else {
				sb.WriteString(" - |")
			}
		}
		sb.WriteByte('\n')
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&sb, "\n_%s_\n", n)
	}
	return sb.String()
}

func formatValue(v float64) string {
	switch {
	case v == 0:
		return "0"
	case v >= 1000:
		return fmt.Sprintf("%.0f", v)
	case v >= 10:
		return fmt.Sprintf("%.1f", v)
	case v >= 0.01:
		return fmt.Sprintf("%.3f", v)
	default:
		return fmt.Sprintf("%.5f", v)
	}
}
