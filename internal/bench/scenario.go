package bench

import (
	"fmt"

	"paw/internal/core"
	"paw/internal/dataset"
	"paw/internal/geom"
	"paw/internal/kdtree"
	"paw/internal/layout"
	"paw/internal/qdtree"
	"paw/internal/workload"
)

// Method labels, matching the paper's legends.
const (
	MQdTree     = "Qd-tree"
	MKdTree     = "k-d tree"
	MPAW        = "PAW"
	MLB         = "LB-Cost"
	MPAWUnknown = "PAW-unknown"
	MPAWRefine  = "PAW-refine" // PAW + data-aware refinement (§IV-E)
	MPAWRect    = "PAW-rect"   // ablation: Multi-Group Split disabled
)

// Scenario is one measurement setting: a dataset, a historical workload, a
// future workload and a δ.
type Scenario struct {
	Cfg     Config
	Data    *dataset.Dataset
	Sample  []int
	MinRows int // bmin in sample rows
	Hist    workload.Workload
	Fut     workload.Workload
	Delta   float64

	layouts map[string]*layout.Layout
}

// NewScenario assembles a scenario; the future workload holds the same
// number of queries as the historical one (Table III's 50/50 split) and is
// δ-similar by construction.
func NewScenario(cfg Config, data *dataset.Dataset, hist workload.Workload, delta float64, futSeed int64) *Scenario {
	return &Scenario{
		Cfg:     cfg,
		Data:    data,
		Sample:  data.Sample(cfg.sampleRowsFor(data.NumRows()), cfg.Seed+7),
		MinRows: cfg.minRowsFor(data.NumRows()),
		Hist:    hist,
		Fut:     workload.Future(hist, delta, 1, futSeed),
		Delta:   delta,
	}
}

// Layout builds (and memoises) the layout for a method, routed over the
// full dataset.
func (s *Scenario) Layout(method string) *layout.Layout {
	if l, ok := s.layouts[method]; ok {
		return l
	}
	dom := s.Data.Domain()
	var l *layout.Layout
	switch method {
	case MQdTree:
		l = qdtree.Build(s.Data, s.Sample, dom, s.Hist.Boxes(), qdtree.Params{MinRows: s.MinRows, Parallelism: s.Cfg.Parallelism})
	case MKdTree:
		l = kdtree.Build(s.Data, s.Sample, dom, kdtree.Params{MinRows: s.MinRows, Parallelism: s.Cfg.Parallelism})
	case MPAW:
		l = core.Build(s.Data, s.Sample, dom, s.Hist, core.Params{MinRows: s.MinRows, Delta: s.Delta, Parallelism: s.Cfg.Parallelism})
	case MPAWRefine:
		l = core.Build(s.Data, s.Sample, dom, s.Hist, core.Params{
			MinRows: s.MinRows, Delta: s.Delta, DataAwareRefine: true, Parallelism: s.Cfg.Parallelism,
		})
	case MPAWRect:
		l = core.Build(s.Data, s.Sample, dom, s.Hist, core.Params{
			MinRows: s.MinRows, Delta: s.Delta, DisableMultiGroup: true, Parallelism: s.Cfg.Parallelism,
		})
	case MPAWUnknown:
		// §IV-E: estimate δ′ from the history alone and guard against
		// underestimation with the data-aware refinement.
		est, err := workload.EstimateDelta(s.Hist)
		if err != nil {
			est = 0
		}
		l = core.Build(s.Data, s.Sample, dom, s.Hist, core.Params{
			MinRows: s.MinRows, Delta: est, DataAwareRefine: true, Parallelism: s.Cfg.Parallelism,
		})
	default:
		panic(fmt.Sprintf("bench: unknown method %q", method))
	}
	l.Route(s.Data)
	if s.layouts == nil {
		s.layouts = make(map[string]*layout.Layout)
	}
	s.layouts[method] = l
	return l
}

// ScanRatioPct measures a method's average scan ratio over the future
// workload, in percent of the dataset (the paper's y-axis). MLB returns the
// theoretical lower bound.
func (s *Scenario) ScanRatioPct(method string) float64 {
	if method == MLB {
		return 100 * layout.LowerBoundRatio(s.Data, s.lbQueries())
	}
	return 100 * s.Layout(method).ScanRatio(s.Fut.Boxes(), nil)
}

// lbQueries caps the exact-lower-bound evaluation (one full scan per query).
func (s *Scenario) lbQueries() []geom.Box {
	boxes := s.Fut.Boxes()
	if max := s.Cfg.MaxLBQueries; max > 0 && len(boxes) > max {
		boxes = boxes[:max]
	}
	return boxes
}

// MeasureAll returns the scan ratios (percent) of the given methods.
func (s *Scenario) MeasureAll(methods []string) map[string]float64 {
	out := make(map[string]float64, len(methods))
	for _, m := range methods {
		out[m] = s.ScanRatioPct(m)
	}
	return out
}
