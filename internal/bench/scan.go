package bench

import (
	"runtime"
	"sort"
	"testing"

	"paw/internal/colstore"
	"paw/internal/geom"
	"paw/internal/parbuild"
)

// ScanResult is one (family, mode, selectivity) cell of the columnar-scan
// benchmark. Throughputs are effective rates over the table's raw logical
// bytes (rows × dims × 8): a scan that skips row groups or columns is
// credited for the data it answered about, not just the bytes it decoded —
// that is what makes skipping show up as throughput.
type ScanResult struct {
	// Family is the query shape: "clustered" constrains only the sort
	// dimension (the others are SMA-covered), "multidim" adds predicates on
	// the unsorted dictionary columns so the refinement kernels run.
	Family string `json:"family"`
	// Mode is the execution path: "naive" (row-at-a-time over fully decoded
	// groups), "vectorized" (selection-vector count), "materialize"
	// (vectorized scan with late materialization), "parallel" (vectorized
	// count fanned over row groups), "vectorized-zones" (vectorized count
	// with feature-vector zone maps).
	Mode string `json:"mode"`
	// Workers is the pool width for the parallel mode (0 otherwise).
	Workers int `json:"workers,omitempty"`
	// TargetSelectivity is the requested matching fraction on the sort
	// dimension; Matched is what the query actually selected.
	TargetSelectivity float64 `json:"target_selectivity"`
	Matched           int     `json:"matched_rows"`
	NsPerOp           int64   `json:"ns_per_op"`
	RowsPerSec        float64 `json:"rows_per_sec"`
	MBPerSec          float64 `json:"mb_per_sec"`
	AllocsPerOp       float64 `json:"allocs_per_op"`
	BytesRead         int64   `json:"bytes_read"`
	BytesSkipped      int64   `json:"bytes_skipped"`
	GroupsRead        int     `json:"groups_read"`
	GroupsSkipped     int     `json:"groups_skipped"`
	GroupsZoneSkipped int     `json:"groups_zone_skipped,omitempty"`
	// SpeedupVsNaive is this cell's throughput over the naive mode at the
	// same family and selectivity (the encoded-vs-raw kernel payoff).
	SpeedupVsNaive float64 `json:"speedup_vs_naive,omitempty"`
}

// ScanReport is the machine-readable scan-kernel snapshot written to
// BENCH_scan.json.
type ScanReport struct {
	Meta       Meta `json:"meta"`
	GOMAXPROCS int  `json:"gomaxprocs"`
	NumCPU     int  `json:"num_cpu"`
	Rows       int  `json:"rows"`
	Dims       int  `json:"dims"`
	RowGroups  int  `json:"row_groups"`
	GroupRows  int  `json:"group_rows"`
	// RawBytes is rows × dims × 8 (the float64 payload a raw store holds);
	// EncodedBytes is the same data under the chosen per-column encodings.
	RawBytes         int64          `json:"raw_bytes"`
	EncodedBytes     int64          `json:"encoded_bytes"`
	CompressionRatio float64        `json:"compression_ratio"`
	Encodings        map[string]int `json:"encodings"`
	// DecodeMBPerSec is the full-decode kernel rate (raw logical MB/s of a
	// full-domain materializing scan) — the CPU bound a cluster simulation
	// should cap throughput at (cluster.Config.KernelMBps, scaled 1/1000).
	DecodeMBPerSec float64      `json:"decode_mb_per_sec"`
	Results        []ScanResult `json:"results"`
}

// scanSelectivities are the per-family target fractions on the sorted
// dimension; the ≤1% points are where row-group skipping dominates.
var scanSelectivities = map[string][]float64{
	"clustered": {0.5, 0.1, 0.01, 0.001},
	"multidim":  {0.1, 0.01},
}

// scanSortDim is the dimension the benchmark table is clustered on. The
// TPC-H stand-in's dim 1 (extendedprice) is continuous, so sorting by it
// gives row groups with tight disjoint envelopes and arbitrary selectivity
// granularity, while the discrete dims (quantity, discount, tax) stay
// unsorted and dictionary-encode.
const scanSortDim = 1

// ScanBench measures the vectorized columnar scan kernels against the
// retained naive reference on a dim-sorted TPC-H stand-in: per-selectivity
// count/scan/parallel throughput, byte skipping, allocation pressure, and
// the full-decode rate. All modes return identical match counts (the
// differential suites prove it); only time, bytes and allocations differ.
func ScanBench(cfg Config) ScanReport {
	data := cfg.tpch()
	n := data.NumRows()
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		return data.At(order[a], scanSortDim) < data.At(order[b], scanSortDim)
	})
	tab := colstore.FromDataset(data, order, colstore.DefaultGroupRows)
	sorted := make([]float64, n)
	for i, r := range order {
		sorted[i] = data.At(r, scanSortDim)
	}
	dom := data.Domain()

	rep := ScanReport{
		Meta:         Meta{Schema: ScanSchema},
		GOMAXPROCS:   runtime.GOMAXPROCS(0),
		NumCPU:       runtime.NumCPU(),
		Rows:         n,
		Dims:         tab.Dims(),
		RowGroups:    tab.NumGroups(),
		GroupRows:    colstore.DefaultGroupRows,
		RawBytes:     int64(n) * int64(tab.Dims()) * 8,
		EncodedBytes: tab.EncodedBytes(),
		Encodings:    tab.EncodingCounts(),
	}
	if rep.EncodedBytes > 0 {
		rep.CompressionRatio = float64(rep.RawBytes) / float64(rep.EncodedBytes)
	}

	// query builds a box matching ~sel of the rows on the sort dimension,
	// anchored at the 30th percentile. The multidim family additionally trims
	// the unsorted dimensions to 92% of their domain, turning them into
	// active (refined) predicate columns instead of covered ones.
	query := func(family string, sel float64) geom.Box {
		lo := int(0.30 * float64(n))
		hi := lo + int(sel*float64(n)) - 1
		if hi >= n {
			hi = n - 1
		}
		q := geom.Box{Lo: dom.Lo.Clone(), Hi: dom.Hi.Clone()}
		q.Lo[scanSortDim] = sorted[lo]
		q.Hi[scanSortDim] = sorted[hi]
		if family == "multidim" {
			for d := 0; d < tab.Dims(); d++ {
				if d == scanSortDim {
					continue
				}
				span := dom.Hi[d] - dom.Lo[d]
				q.Hi[d] = dom.Lo[d] + 0.92*span
			}
		}
		return q
	}

	sc := colstore.NewScanner()
	pool := parbuild.New(0)
	var sp colstore.ScannerPool

	measure := func(family, mode string, workers int, sel float64, st colstore.ScanStats, op func()) ScanResult {
		op() // warm up scratch so steady-state allocations are measured
		res := testing.Benchmark(func(tb *testing.B) {
			tb.ReportAllocs()
			for i := 0; i < tb.N; i++ {
				op()
			}
		})
		out := ScanResult{
			Family:            family,
			Mode:              mode,
			Workers:           workers,
			TargetSelectivity: sel,
			Matched:           st.Matched,
			NsPerOp:           res.NsPerOp(),
			AllocsPerOp:       float64(res.AllocsPerOp()),
			BytesRead:         st.BytesRead,
			BytesSkipped:      st.BytesSkipped,
			GroupsRead:        st.GroupsRead,
			GroupsSkipped:     st.GroupsSkipped,
			GroupsZoneSkipped: st.GroupsZoneSkipped,
		}
		if res.NsPerOp() > 0 {
			perSec := 1e9 / float64(res.NsPerOp())
			out.RowsPerSec = float64(n) * perSec
			out.MBPerSec = float64(rep.RawBytes) / 1e6 * perSec
		}
		return out
	}

	for _, family := range []string{"clustered", "multidim"} {
		for _, sel := range scanSelectivities[family] {
			q := query(family, sel)
			naive := measure(family, "naive", 0, sel, tab.CountNaive(q), func() {
				tab.CountNaive(q)
			})
			rep.Results = append(rep.Results, naive)

			vec := measure(family, "vectorized", 0, sel, sc.Count(tab, q), func() {
				sc.Count(tab, q)
			})
			vec.SpeedupVsNaive = speedup(naive.NsPerOp, vec.NsPerOp)
			rep.Results = append(rep.Results, vec)

			_, mst := sc.Scan(tab, q)
			mat := measure(family, "materialize", 0, sel, mst, func() {
				sc.Scan(tab, q)
			})
			mat.SpeedupVsNaive = speedup(naive.NsPerOp, mat.NsPerOp)
			rep.Results = append(rep.Results, mat)

			par := measure(family, "parallel", pool.Workers(), sel, tab.CountParallel(q, pool, &sp), func() {
				tab.CountParallel(q, pool, &sp)
			})
			par.SpeedupVsNaive = speedup(naive.NsPerOp, par.NsPerOp)
			rep.Results = append(rep.Results, par)
		}
	}

	// Feature-vector zone maps over the multidim queries: the scan skips row
	// groups holding no matching row, beyond what min/max envelopes prove.
	zq := make([]geom.Box, 0, len(scanSelectivities["multidim"]))
	for _, sel := range scanSelectivities["multidim"] {
		zq = append(zq, query("multidim", sel))
	}
	tab.BuildZoneMaps(zq)
	for i, sel := range scanSelectivities["multidim"] {
		q := zq[i]
		var naiveNs int64
		for _, r := range rep.Results {
			if r.Family == "multidim" && r.Mode == "naive" && r.TargetSelectivity == sel {
				naiveNs = r.NsPerOp
			}
		}
		zr := measure("multidim", "vectorized-zones", 0, sel, sc.Count(tab, q), func() {
			sc.Count(tab, q)
		})
		zr.SpeedupVsNaive = speedup(naiveNs, zr.NsPerOp)
		rep.Results = append(rep.Results, zr)
	}
	tab.BuildZoneMaps(nil)

	// Full-domain materializing scan: every group and column decodes, giving
	// the pure kernel decode rate for the simulator's CPU bound.
	full := dom.Clone()
	fr := measure("clustered", "decode-all", 0, 1.0, func() colstore.ScanStats {
		_, st := sc.Scan(tab, full)
		return st
	}(), func() {
		sc.Scan(tab, full)
	})
	rep.DecodeMBPerSec = fr.MBPerSec
	rep.Results = append(rep.Results, fr)
	return rep
}
