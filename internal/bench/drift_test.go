package bench

import "testing"

// The drift benchmark runs the full scenario family against live clusters;
// its labels are the acceptance contract: drifting scenarios trigger, migrate
// and recover, in-scope scenarios never fire.
func TestDriftBench(t *testing.T) {
	if testing.Short() {
		t.Skip("drift bench drives live clusters")
	}
	cfg := tinyConfig()
	rep, err := DriftBench(cfg, DriftOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Meta.Schema != DriftSchema {
		t.Fatalf("schema = %q, want %q", rep.Meta.Schema, DriftSchema)
	}
	if len(rep.Scenarios) != 4 {
		t.Fatalf("scenarios = %d, want 4", len(rep.Scenarios))
	}
	for _, sc := range rep.Scenarios {
		if sc.Triggered != sc.ExpectDrift {
			t.Errorf("%s: triggered=%v, expect_drift=%v", sc.Scenario, sc.Triggered, sc.ExpectDrift)
		}
		if sc.CostBaseline <= 0 {
			t.Errorf("%s: no observed baseline cost", sc.Scenario)
		}
		if !sc.ExpectDrift {
			if sc.Migrated || sc.Epoch != 0 {
				t.Errorf("%s: in-scope scenario migrated: %+v", sc.Scenario, sc)
			}
			continue
		}
		if !sc.Migrated {
			t.Errorf("%s: drifting scenario did not migrate", sc.Scenario)
			continue
		}
		if sc.Epoch == 0 || sc.MovedBytes <= 0 || sc.AddedParts == 0 {
			t.Errorf("%s: migration shipped nothing: %+v", sc.Scenario, sc)
		}
		if sc.MigratedAtQuery < 0 || sc.MigratedAtQuery > sc.Queries {
			t.Errorf("%s: migrated_at_query = %d out of range", sc.Scenario, sc.MigratedAtQuery)
		}
		if sc.CostRecovered <= 0 || sc.CostRecovered >= sc.CostRegressed {
			t.Errorf("%s: cost did not recover: regressed %.0f, recovered %.0f",
				sc.Scenario, sc.CostRegressed, sc.CostRecovered)
		}
		if sc.OfflineCost <= 0 || sc.RecoveryVsOffline <= 0 {
			t.Errorf("%s: offline comparison missing: %+v", sc.Scenario, sc)
		}
		if sc.AdaptiveScanBytes <= 0 {
			t.Errorf("%s: adaptive baseline recorded no scan bytes", sc.Scenario)
		}
	}
}
