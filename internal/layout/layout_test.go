package layout

import (
	"testing"

	"paw/internal/dataset"
	"paw/internal/geom"
)

func box2(l0, l1, h0, h1 float64) geom.Box {
	return geom.Box{Lo: geom.Point{l0, l1}, Hi: geom.Point{h0, h1}}
}

// grid4 builds a 2x2 rectangular layout over [0,10]^2 with a tiny dataset.
func grid4(t *testing.T) (*Layout, *dataset.Dataset) {
	t.Helper()
	// 8 records, 2 per quadrant.
	xs := []float64{1, 2, 6, 7, 1, 2, 6, 7}
	ys := []float64{1, 2, 1, 2, 6, 7, 6, 7}
	data := dataset.MustNew([]string{"x", "y"}, [][]float64{xs, ys})

	mk := func(b geom.Box) *Node {
		return &Node{Desc: NewRect(b), Part: &Partition{Desc: NewRect(b)}}
	}
	root := &Node{Desc: NewRect(box2(0, 0, 10, 10))}
	left := &Node{Desc: NewRect(box2(0, 0, 5, 10)), Children: []*Node{
		mk(box2(0, 0, 5, 5)), mk(box2(0, 5, 5, 10)),
	}}
	right := &Node{Desc: NewRect(box2(5, 0, 10, 10)), Children: []*Node{
		mk(box2(5, 0, 10, 5)), mk(box2(5, 5, 10, 10)),
	}}
	root.Children = []*Node{left, right}
	l := Seal("test", root, data.RowBytes())
	l.Route(data)
	return l, data
}

func TestSealAssignsIDs(t *testing.T) {
	l, _ := grid4(t)
	if l.NumPartitions() != 4 {
		t.Fatalf("partitions = %d, want 4", l.NumPartitions())
	}
	for i, p := range l.Parts {
		if int(p.ID) != i {
			t.Errorf("partition %d has ID %d", i, p.ID)
		}
		if p.RowBytes != 32 {
			t.Errorf("RowBytes = %d", p.RowBytes)
		}
	}
}

func TestRouteCounts(t *testing.T) {
	l, data := grid4(t)
	if l.Unrouted != 0 {
		t.Fatalf("unrouted = %d", l.Unrouted)
	}
	var sum int64
	for _, p := range l.Parts {
		if p.FullRows != 2 {
			t.Errorf("partition %d rows = %d, want 2", p.ID, p.FullRows)
		}
		sum += p.FullRows
	}
	if sum != int64(data.NumRows()) {
		t.Errorf("routed %d of %d", sum, data.NumRows())
	}
	if l.TotalBytes != data.TotalBytes() {
		t.Errorf("TotalBytes = %d, want %d", l.TotalBytes, data.TotalBytes())
	}
}

func TestQueryCost(t *testing.T) {
	l, _ := grid4(t)
	partBytes := int64(2 * 32)
	cases := []struct {
		q    geom.Box
		want int64
	}{
		{box2(1, 1, 2, 2), partBytes},     // one quadrant
		{box2(1, 1, 7, 2), 2 * partBytes}, // two quadrants
		{box2(1, 1, 7, 7), 4 * partBytes}, // all
		{box2(11, 11, 12, 12), 0},         // outside
	}
	for _, c := range cases {
		if got := l.QueryCost(c.q, nil); got != c.want {
			t.Errorf("QueryCost(%v) = %d, want %d", c.q, got, c.want)
		}
	}
}

func TestWorkloadCostAndScanRatio(t *testing.T) {
	l, _ := grid4(t)
	qs := []geom.Box{box2(1, 1, 2, 2), box2(1, 1, 7, 7)}
	if got := l.WorkloadCost(qs, nil); got != 64+256 {
		t.Errorf("WorkloadCost = %d", got)
	}
	if got := l.AvgCost(qs, nil); got != 160 {
		t.Errorf("AvgCost = %v", got)
	}
	if got := l.ScanRatio(qs, nil); got != 160.0/256 {
		t.Errorf("ScanRatio = %v", got)
	}
	if l.AvgCost(nil, nil) != 0 {
		t.Error("empty workload cost must be 0")
	}
}

func TestLowerBound(t *testing.T) {
	_, data := grid4(t)
	q := box2(0, 0, 5, 5) // 2 records
	if got := LowerBoundBytes(data, q); got != 64 {
		t.Errorf("LowerBoundBytes = %d, want 64", got)
	}
	r := LowerBoundRatio(data, []geom.Box{q})
	if r != 64.0/256 {
		t.Errorf("LowerBoundRatio = %v", r)
	}
}

func TestCostDominatesLB(t *testing.T) {
	l, data := grid4(t)
	qs := []geom.Box{box2(0, 0, 3, 3), box2(1, 1, 9, 9), box2(4, 4, 6, 6)}
	if err := l.CheckCostDominatesLB(data, qs); err != nil {
		t.Error(err)
	}
}

func TestPartitionsFor(t *testing.T) {
	l, _ := grid4(t)
	ids := l.PartitionsFor(box2(1, 1, 7, 2))
	if len(ids) != 2 || ids[0] != 0 || ids[1] != 2 {
		t.Errorf("PartitionsFor = %v", ids)
	}
}

func TestIrregularDescriptor(t *testing.T) {
	outer := box2(0, 0, 10, 10)
	hole := box2(4, 4, 6, 6)
	ir := NewIrregular(outer, []geom.Box{hole})
	if ir.Kind() != KindIrregular {
		t.Error("kind")
	}
	if !ir.MBR().Equal(outer) {
		t.Error("MBR must be the outer box")
	}
	if ir.Intersects(box2(4.5, 4.5, 5.5, 5.5)) {
		t.Error("query strictly inside the hole must not intersect")
	}
	if !ir.Intersects(box2(1, 1, 2, 2)) {
		t.Error("query in the frame must intersect")
	}
	if ir.Contains(geom.Point{5, 5}) {
		t.Error("hole interior must not be contained")
	}
	if !ir.Contains(geom.Point{1, 1}) {
		t.Error("frame point must be contained")
	}
}

func TestIrregularRoutingOrder(t *testing.T) {
	// A multi-group-style node: GP = [4,4]-[6,6] carved out of [0,10]^2.
	outer := box2(0, 0, 10, 10)
	gpBox := box2(4, 4, 6, 6)
	gp := &Node{Desc: NewRect(gpBox), Part: &Partition{Desc: NewRect(gpBox)}}
	ipDesc := NewIrregular(outer, []geom.Box{gpBox})
	ip := &Node{Desc: ipDesc, Part: &Partition{Desc: ipDesc}}
	root := &Node{Desc: NewRect(outer), Children: []*Node{gp, ip}}

	xs := []float64{5, 1, 4, 9} // 5,5 in GP; 4,4 on GP boundary -> GP (first match)
	ys := []float64{5, 1, 4, 9}
	data := dataset.MustNew([]string{"x", "y"}, [][]float64{xs, ys})
	l := Seal("test", root, data.RowBytes())
	l.Route(data)
	if l.Unrouted != 0 {
		t.Fatalf("unrouted = %d", l.Unrouted)
	}
	if l.Parts[0].FullRows != 2 { // (5,5) and boundary (4,4)
		t.Errorf("GP rows = %d, want 2", l.Parts[0].FullRows)
	}
	if l.Parts[1].FullRows != 2 {
		t.Errorf("IP rows = %d, want 2", l.Parts[1].FullRows)
	}
	// A query inside the GP must cost only the GP.
	if got := l.QueryCost(box2(4.5, 4.5, 5.5, 5.5), nil); got != l.Parts[0].Bytes() {
		t.Errorf("query inside GP cost = %d, want %d", got, l.Parts[0].Bytes())
	}
}

func TestPreciseDescriptorPruning(t *testing.T) {
	l, _ := grid4(t)
	// Partition 0 holds (1,1),(2,2); give it a tight precise descriptor.
	l.Parts[0].Precise = []geom.Box{box2(1, 1, 2, 2)}
	// Query hits the empty corner of quadrant 0 — pruned by precise MBRs.
	q := box2(3, 3, 4, 4)
	if got := l.QueryCost(q, nil); got != 0 {
		t.Errorf("cost with precise pruning = %d, want 0", got)
	}
	// Query overlapping the records is still charged.
	q = box2(1.5, 1.5, 4, 4)
	if got := l.QueryCost(q, nil); got != l.Parts[0].Bytes() {
		t.Errorf("cost = %d, want %d", got, l.Parts[0].Bytes())
	}
}

func TestExtras(t *testing.T) {
	l, _ := grid4(t)
	extras := Extras{{Box: box2(0, 0, 3, 3), FullRows: 2, RowBytes: 32}}
	// Query inside the extra partition: answered from the copy.
	if got := l.QueryCost(box2(1, 1, 2, 2), extras); got != 64 {
		t.Errorf("cost = %d, want 64", got)
	}
	// Query not contained in the extra: normal path.
	if got := l.QueryCost(box2(1, 1, 7, 2), extras); got != 128 {
		t.Errorf("cost = %d, want 128", got)
	}
	// Cheapest covering extra wins.
	extras = append(extras, Extra{Box: box2(0, 0, 4, 4), FullRows: 1, RowBytes: 32})
	if got := l.QueryCost(box2(1, 1, 2, 2), extras); got != 32 {
		t.Errorf("cost = %d, want 32 (cheapest extra)", got)
	}
}

func TestValidate(t *testing.T) {
	l, data := grid4(t)
	if err := l.Validate(data, 2); err != nil {
		t.Errorf("valid layout rejected: %v", err)
	}
	if err := l.Validate(data, 3); err == nil {
		t.Error("bmin=3 must be violated by 2-row partitions")
	}
}

func TestRouteIndices(t *testing.T) {
	l, data := grid4(t)
	m := l.RouteIndices(data, []int{0, 1, 4})
	if len(m[0]) != 2 {
		t.Errorf("partition 0 got %v", m[0])
	}
	if len(m[1]) != 1 {
		t.Errorf("partition 1 got %v", m[1])
	}
}

func TestUnroutedDetection(t *testing.T) {
	// A root whose children do not cover the domain.
	b := box2(0, 0, 4, 4)
	leaf := &Node{Desc: NewRect(b), Part: &Partition{Desc: NewRect(b)}}
	root := &Node{Desc: NewRect(box2(0, 0, 10, 10)), Children: []*Node{leaf}}
	data := dataset.MustNew([]string{"x", "y"}, [][]float64{{1, 9}, {1, 9}})
	l := Seal("test", root, data.RowBytes())
	l.Route(data)
	if l.Unrouted != 1 {
		t.Errorf("unrouted = %d, want 1", l.Unrouted)
	}
	if err := l.Validate(data, 0); err == nil {
		t.Error("Validate must fail on unrouted records")
	}
}

func TestRouteParallelMatchesSerial(t *testing.T) {
	// Large enough to take the parallel path.
	n := 10000
	xs := make([]float64, n)
	ys := make([]float64, n)
	for i := range xs {
		xs[i] = float64(i%100) / 10
		ys[i] = float64(i%97) / 9.7
	}
	data := dataset.MustNew([]string{"x", "y"}, [][]float64{xs, ys})
	mk := func(b geom.Box) *Node {
		return &Node{Desc: NewRect(b), Part: &Partition{Desc: NewRect(b)}}
	}
	root := &Node{Desc: NewRect(box2(0, 0, 10, 10)), Children: []*Node{
		mk(box2(0, 0, 5, 5)), mk(box2(0, 5, 5, 10)),
		mk(box2(5, 0, 10, 5)), mk(box2(5, 5, 10, 10)),
	}}
	l := Seal("test", root, data.RowBytes())
	l.Route(data)
	serial := make([]int64, len(l.Parts))
	for i, p := range l.Parts {
		serial[i] = p.FullRows
	}
	serialUnrouted := l.Unrouted

	for _, workers := range []int{2, 4, 7} {
		l.RouteParallel(data, workers)
		if l.Unrouted != serialUnrouted {
			t.Fatalf("workers=%d: unrouted %d vs %d", workers, l.Unrouted, serialUnrouted)
		}
		for i, p := range l.Parts {
			if p.FullRows != serial[i] {
				t.Fatalf("workers=%d partition %d: %d vs %d", workers, i, p.FullRows, serial[i])
			}
		}
		if l.TotalBytes != data.TotalBytes() {
			t.Fatalf("TotalBytes = %d", l.TotalBytes)
		}
	}
	// Small inputs fall back to the serial path.
	small := dataset.MustNew([]string{"x", "y"}, [][]float64{{1}, {1}})
	l.RouteParallel(small, 8)
	var sum int64
	for _, p := range l.Parts {
		sum += p.FullRows
	}
	if sum != 1 {
		t.Errorf("fallback routed %d rows", sum)
	}
}

func TestKindString(t *testing.T) {
	if KindRect.String() != "rect" || KindIrregular.String() != "irregular" {
		t.Error("Kind strings wrong")
	}
	if Kind(99).String() == "" {
		t.Error("unknown kind must still render")
	}
}
