package layout

import (
	"fmt"

	"paw/internal/dataset"
	"paw/internal/geom"
)

// Validate checks structural invariants of a routed layout against the full
// dataset:
//
//  1. every record routes to exactly one leaf (Unrouted == 0 and counts add
//     up to the dataset size);
//  2. every leaf's descriptor region actually contains the records routed
//     to it (spot-checked exhaustively — routing guarantees it, so this
//     detects descriptor/tree disagreements);
//  3. every partition respects the minimum size when minRows > 0, except
//     those explicitly allowed (a build may produce one undersized leaf
//     when the parent itself was barely above bmin).
//
// It returns a descriptive error for the first violation found.
func (l *Layout) Validate(data *dataset.Dataset, minRows int64) error {
	if l.Unrouted != 0 {
		return fmt.Errorf("layout: %d records were not routed to any partition", l.Unrouted)
	}
	var sum int64
	for _, p := range l.Parts {
		sum += p.FullRows
	}
	if sum != int64(data.NumRows()) {
		return fmt.Errorf("layout: routed %d records, dataset has %d", sum, data.NumRows())
	}
	if minRows > 0 {
		for _, p := range l.Parts {
			if p.FullRows < minRows {
				return fmt.Errorf("layout: partition %d has %d rows, below bmin=%d rows",
					p.ID, p.FullRows, minRows)
			}
		}
	}
	// Re-route every record and confirm the target leaf's descriptor
	// contains it.
	cols := hoistColumns(data)
	pt := make(geom.Point, len(cols))
	for i := 0; i < data.NumRows(); i++ {
		for d, col := range cols {
			pt[d] = col[i]
		}
		part := l.Root.routeDown(pt)
		if part == nil {
			return fmt.Errorf("layout: record %d routes nowhere on revalidation", i)
		}
		if !part.Desc.Contains(pt) {
			return fmt.Errorf("layout: record %d routed to partition %d whose descriptor excludes it", i, part.ID)
		}
	}
	return nil
}

// CheckCostDominatesLB verifies Cost(P, q) >= LBCost(q) for every query —
// the cost model can never beat scanning exactly the result.
func (l *Layout) CheckCostDominatesLB(data *dataset.Dataset, queries []geom.Box) error {
	for i, q := range queries {
		c := l.QueryCost(q, nil)
		lb := LowerBoundBytes(data, q)
		if c < lb {
			return fmt.Errorf("layout: query %d cost %d below lower bound %d", i, c, lb)
		}
	}
	return nil
}
