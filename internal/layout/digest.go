package layout

import (
	"crypto/sha256"
	"encoding/hex"
)

// Digest returns the hex SHA-256 of the layout's canonical binary encoding
// (io.go). Two layouts digest equally iff Encode writes identical bytes:
// same tree shape, descriptors, partition IDs, sizes and precise
// descriptors. The simulation harness uses it to assert that parallel
// construction is byte-identical to serial construction, and the golden
// regression test pins a fixed-seed build to a committed digest.
func (l *Layout) Digest() (string, error) {
	h := sha256.New()
	if err := l.Encode(h); err != nil {
		return "", err
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}
