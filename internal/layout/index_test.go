package layout

import (
	"math/rand"
	"testing"

	"paw/internal/geom"
)

// randomNode grows a random partition subtree over box: rect leaves, binary
// axis splits, wide rect fan-outs (wide enough to trigger the per-node child
// index), and multi-group nodes — disjoint rectangular holes carved out of
// the box with the irregular remainder as the last child, mirroring the
// builders' child ordering.
func randomNode(r *rand.Rand, box geom.Box, depth int) *Node {
	if depth <= 0 || r.Intn(5) == 0 {
		d := NewRect(box)
		return &Node{Desc: d, Part: &Partition{Desc: d}}
	}
	switch r.Intn(3) {
	case 0: // binary axis split
		dim := r.Intn(box.Dims())
		frac := 0.2 + 0.6*r.Float64()
		m := box.Lo[dim] + frac*(box.Hi[dim]-box.Lo[dim])
		left, right := box.Clone(), box.Clone()
		left.Hi[dim] = m
		right.Lo[dim] = m
		return &Node{Desc: NewRect(box), Children: []*Node{
			randomNode(r, left, depth-1),
			randomNode(r, right, depth-1),
		}}
	case 1: // wide fan-out: k strips along one dimension
		dim := r.Intn(box.Dims())
		k := childIndexMinFanout + r.Intn(5)
		n := &Node{Desc: NewRect(box)}
		w := (box.Hi[dim] - box.Lo[dim]) / float64(k)
		for i := 0; i < k; i++ {
			s := box.Clone()
			s.Lo[dim] = box.Lo[dim] + float64(i)*w
			s.Hi[dim] = box.Lo[dim] + float64(i+1)*w
			if i == k-1 {
				s.Hi[dim] = box.Hi[dim]
			}
			n.Children = append(n.Children, randomNode(r, s, depth-1))
		}
		return n
	default: // multi-group: disjoint holes + irregular remainder last
		cells := gridCells(box, 3)
		r.Shuffle(len(cells), func(i, j int) { cells[i], cells[j] = cells[j], cells[i] })
		nh := 1 + r.Intn(3)
		holes := make([]geom.Box, 0, nh)
		for _, c := range cells[:nh] {
			holes = append(holes, c.Scale(0.7+0.25*r.Float64()))
		}
		n := &Node{Desc: NewRect(box)}
		for _, h := range holes {
			n.Children = append(n.Children, randomNode(r, h, depth-1))
		}
		ir := NewIrregular(box, holes)
		n.Children = append(n.Children, &Node{Desc: ir, Part: &Partition{Desc: ir}})
		return n
	}
}

// gridCells cuts box into side×side... (per dimension) cells.
func gridCells(box geom.Box, side int) []geom.Box {
	cells := []geom.Box{box.Clone()}
	for d := 0; d < box.Dims(); d++ {
		var next []geom.Box
		for _, c := range cells {
			w := (c.Hi[d] - c.Lo[d]) / float64(side)
			for i := 0; i < side; i++ {
				s := c.Clone()
				s.Lo[d] = c.Lo[d] + float64(i)*w
				s.Hi[d] = c.Lo[d] + float64(i+1)*w
				next = append(next, s)
			}
		}
		cells = next
	}
	return cells
}

// randSubBox returns a random box inside m.
func randSubBox(r *rand.Rand, m geom.Box) geom.Box {
	lo := make(geom.Point, m.Dims())
	hi := make(geom.Point, m.Dims())
	for d := range lo {
		a := m.Lo[d] + r.Float64()*(m.Hi[d]-m.Lo[d])
		b := m.Lo[d] + r.Float64()*(m.Hi[d]-m.Lo[d])
		if a > b {
			a, b = b, a
		}
		lo[d], hi[d] = a, b
	}
	return geom.Box{Lo: lo, Hi: hi}
}

// randomLayout builds and seals a random routed layout mixing rect,
// irregular and precise descriptors, with nonzero partition sizes.
func randomLayout(r *rand.Rand) *Layout {
	dom := box2(0, 0, 100, 100)
	root := randomNode(r, dom, 3)
	l := Seal("rand", root, 8)
	for _, p := range l.Parts {
		p.FullRows = int64(1 + r.Intn(100))
		l.TotalBytes += p.Bytes()
		if r.Intn(4) == 0 {
			m := p.Desc.MBR()
			for j := r.Intn(3) + 1; j > 0; j-- {
				p.Precise = append(p.Precise, randSubBox(r, m))
			}
		}
	}
	return l
}

// randQueries mixes random boxes, exact partition MBRs (boundary contact),
// degenerate point boxes, the whole domain, and empty boxes.
func randQueries(r *rand.Rand, l *Layout, n int) []geom.Box {
	dom := box2(0, 0, 100, 100)
	out := make([]geom.Box, 0, n)
	for i := 0; i < n; i++ {
		switch r.Intn(6) {
		case 0: // exact descriptor MBR: maximal boundary contact
			p := l.Parts[r.Intn(len(l.Parts))]
			out = append(out, p.Desc.MBR().Clone())
		case 1: // degenerate point box
			pt := geom.Point{r.Float64() * 100, r.Float64() * 100}
			out = append(out, geom.Box{Lo: pt.Clone(), Hi: pt.Clone()})
		case 2: // whole domain
			out = append(out, dom.Clone())
		case 3: // empty (inverted)
			out = append(out, geom.Box{Lo: geom.Point{60, 60}, Hi: geom.Point{10, 10}})
		default:
			out = append(out, randSubBox(r, dom))
		}
	}
	return out
}

func randExtras(r *rand.Rand, l *Layout) Extras {
	var out Extras
	for i := r.Intn(4); i > 0; i-- {
		out = append(out, Extra{
			Box:      randSubBox(r, box2(0, 0, 100, 100)),
			FullRows: int64(1 + r.Intn(500)),
			RowBytes: l.RowBytes,
		})
	}
	return out
}

func equalIDs(a, b []ID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// diffRouting asserts every indexed query path agrees exactly with its
// retained linear reference on the given layout. Shared by the property test
// and the fuzz target.
func diffRouting(t *testing.T, r *rand.Rand, l *Layout) {
	t.Helper()
	extras := randExtras(r, l)
	for _, q := range randQueries(r, l, 60) {
		a, b := l.PartitionsFor(q), l.PartitionsForLinear(q)
		if !equalIDs(a, b) {
			t.Fatalf("PartitionsFor(%v): indexed %v, linear %v", q, a, b)
		}
		if ci, cl := l.QueryCost(q, nil), l.QueryCostLinear(q, nil); ci != cl {
			t.Fatalf("QueryCost(%v): indexed %d, linear %d", q, ci, cl)
		}
		if ci, cl := l.QueryCost(q, extras), l.QueryCostLinear(q, extras); ci != cl {
			t.Fatalf("QueryCost(%v, extras): indexed %d, linear %d", q, ci, cl)
		}
	}
	for i := 0; i < 120; i++ {
		pt := geom.Point{r.Float64() * 104 - 2, r.Float64() * 104 - 2}
		if i%3 == 0 && len(l.Parts) > 0 {
			// Points on descriptor boundaries: routing ties must resolve
			// identically (first matching child wins).
			m := l.Parts[r.Intn(len(l.Parts))].Desc.MBR()
			pt = geom.Point{m.Lo[0], m.Hi[1]}
		}
		a, b := l.Locate(pt), l.LocateLinear(pt)
		if a != b {
			t.Fatalf("Locate(%v): indexed %v, linear %v", pt, a, b)
		}
	}
}

func TestIndexedRoutingMatchesLinear(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for trial := 0; trial < 25; trial++ {
		l := randomLayout(r)
		diffRouting(t, r, l)
	}
}

func TestBatchMatchesSequential(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	l := randomLayout(r)
	queries := randQueries(r, l, 100)
	extras := randExtras(r, l)
	want := make([][]ID, len(queries))
	for i, q := range queries {
		want[i] = l.PartitionsFor(q)
	}
	for _, workers := range []int{1, 2, 4, 8} {
		got := l.PartitionsForBatch(queries, workers)
		for i := range queries {
			if !equalIDs(got[i], want[i]) {
				t.Fatalf("workers=%d query %d: %v vs %v", workers, i, got[i], want[i])
			}
		}
		if wc, pc := l.WorkloadCost(queries, extras), l.WorkloadCostParallel(queries, extras, workers); wc != pc {
			t.Fatalf("workers=%d WorkloadCostParallel %d, want %d", workers, pc, wc)
		}
		costs := l.QueryCosts(queries, extras, workers)
		for i, q := range queries {
			if want := l.QueryCost(q, extras); costs[i] != want {
				t.Fatalf("workers=%d QueryCosts[%d] = %d, want %d", workers, i, costs[i], want)
			}
		}
	}
}

func TestAppendPartitionsForAllocFree(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	l := randomLayout(r)
	q := box2(10, 10, 70, 70)
	dst := make([]ID, 0, len(l.Parts))
	for i := 0; i < 16; i++ { // warm the candidate pool and grow dst
		dst = l.AppendPartitionsFor(dst[:0], q)
	}
	avg := testing.AllocsPerRun(200, func() {
		dst = l.AppendPartitionsFor(dst[:0], q)
	})
	if avg > 0.5 {
		t.Errorf("AppendPartitionsFor allocates %.1f objects/op, want 0", avg)
	}
}

func TestCostRowsIndexedMatchesLinear(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	l := randomLayout(r)
	var pieces []Piece
	for _, p := range l.Parts {
		pieces = append(pieces, Piece{Desc: p.Desc, Rows: 1 + r.Intn(50)})
	}
	// Enough queries to force the indexed path regardless of layout size.
	n := costRowsIndexMinWork/len(pieces) + 64
	queries := randQueries(r, l, n)
	if len(pieces)*len(queries) < costRowsIndexMinWork {
		t.Fatalf("test setup too small to exercise the indexed path")
	}
	if got, want := CostRows(pieces, queries), costRowsLinear(pieces, queries); got != want {
		t.Fatalf("CostRows indexed %d, linear %d", got, want)
	}
	// Small instances take the linear path; sanity-check the dispatch.
	small := queries[:2]
	if got, want := CostRows(pieces[:2], small), costRowsLinear(pieces[:2], small); got != want {
		t.Fatalf("CostRows small %d, linear %d", got, want)
	}
}

// TestUnsealedLayoutFallsBack: query paths on a hand-assembled layout (no
// Seal, no index) still answer through the linear reference.
func TestUnsealedLayoutFallsBack(t *testing.T) {
	d := NewRect(box2(0, 0, 10, 10))
	part := &Partition{ID: 0, Desc: d, FullRows: 5, RowBytes: 8}
	l := &Layout{
		Method: "manual",
		Root:   &Node{Desc: d, Part: part},
		Parts:  []*Partition{part},
	}
	q := box2(1, 1, 2, 2)
	if got := l.PartitionsFor(q); !equalIDs(got, []ID{0}) {
		t.Fatalf("PartitionsFor = %v", got)
	}
	if got := l.QueryCost(q, nil); got != part.Bytes() {
		t.Fatalf("QueryCost = %d", got)
	}
}
