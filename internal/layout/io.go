package layout

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"paw/internal/geom"
)

// Binary layout format ("PAWL"): the master's durable metadata — the full
// partition tree with descriptors, partition sizes and precise descriptors —
// so a master restart (or a cold pawcli run) can reload routing state
// without rebuilding the layout. Sample row indices are construction-time
// state and are not persisted.
//
//	magic    uint32 'PAWL'
//	version  uint16 1
//	method   uint16 len + bytes
//	rowBytes, totalBytes, unrouted int64
//	tree     pre-order; per node:
//	           descTag uint8 (0 rect, 1 irregular)
//	           desc    rect: box | irregular: outer box, nHoles uint32, holes
//	           isLeaf  uint8
//	           if leaf: id int64, fullRows int64,
//	                    nPrecise uint32, precise boxes
//	           nChildren uint32, children...
//	box      dims uint16, then 2·dims float64 (lo..., hi...)
const (
	layoutMagic   = 0x5041574C // "PAWL"
	layoutVersion = 1
)

// Encode serialises the layout.
func (l *Layout) Encode(w io.Writer) error {
	bw := bufio.NewWriter(w)
	le := binary.LittleEndian
	write := func(v any) error { return binary.Write(bw, le, v) }
	if err := write(uint32(layoutMagic)); err != nil {
		return err
	}
	if err := write(uint16(layoutVersion)); err != nil {
		return err
	}
	if len(l.Method) > math.MaxUint16 {
		return fmt.Errorf("layout: method name too long")
	}
	if err := write(uint16(len(l.Method))); err != nil {
		return err
	}
	if _, err := bw.WriteString(l.Method); err != nil {
		return err
	}
	for _, v := range []int64{l.RowBytes, l.TotalBytes, l.Unrouted} {
		if err := write(v); err != nil {
			return err
		}
	}
	if err := writeNode(bw, l.Root); err != nil {
		return err
	}
	return bw.Flush()
}

func writeBox(w io.Writer, b geom.Box) error {
	le := binary.LittleEndian
	if err := binary.Write(w, le, uint16(b.Dims())); err != nil {
		return err
	}
	for _, v := range b.Lo {
		if err := binary.Write(w, le, v); err != nil {
			return err
		}
	}
	for _, v := range b.Hi {
		if err := binary.Write(w, le, v); err != nil {
			return err
		}
	}
	return nil
}

func writeNode(w io.Writer, n *Node) error {
	le := binary.LittleEndian
	switch d := n.Desc.(type) {
	case Rect:
		if err := binary.Write(w, le, uint8(0)); err != nil {
			return err
		}
		if err := writeBox(w, d.Box); err != nil {
			return err
		}
	case Irregular:
		if err := binary.Write(w, le, uint8(1)); err != nil {
			return err
		}
		if err := writeBox(w, d.Outer); err != nil {
			return err
		}
		if err := binary.Write(w, le, uint32(len(d.Holes))); err != nil {
			return err
		}
		for _, h := range d.Holes {
			if err := writeBox(w, h); err != nil {
				return err
			}
		}
	default:
		return fmt.Errorf("layout: cannot serialise descriptor %T", n.Desc)
	}
	isLeaf := uint8(0)
	if n.IsLeaf() {
		isLeaf = 1
	}
	if err := binary.Write(w, le, isLeaf); err != nil {
		return err
	}
	if n.IsLeaf() {
		if err := binary.Write(w, le, int64(n.Part.ID)); err != nil {
			return err
		}
		if err := binary.Write(w, le, n.Part.FullRows); err != nil {
			return err
		}
		if err := binary.Write(w, le, uint32(len(n.Part.Precise))); err != nil {
			return err
		}
		for _, b := range n.Part.Precise {
			if err := writeBox(w, b); err != nil {
				return err
			}
		}
	}
	if err := binary.Write(w, le, uint32(len(n.Children))); err != nil {
		return err
	}
	for _, c := range n.Children {
		if err := writeNode(w, c); err != nil {
			return err
		}
	}
	return nil
}

// Decode deserialises a layout written by Encode. The result is fully
// routable and costable; sample rows are absent.
func Decode(r io.Reader) (*Layout, error) {
	br := bufio.NewReader(r)
	le := binary.LittleEndian
	var magic uint32
	if err := binary.Read(br, le, &magic); err != nil {
		return nil, fmt.Errorf("layout: reading magic: %w", err)
	}
	if magic != layoutMagic {
		return nil, fmt.Errorf("layout: bad magic %#x", magic)
	}
	var version uint16
	if err := binary.Read(br, le, &version); err != nil {
		return nil, err
	}
	if version != layoutVersion {
		return nil, fmt.Errorf("layout: unsupported version %d", version)
	}
	var mlen uint16
	if err := binary.Read(br, le, &mlen); err != nil {
		return nil, err
	}
	mb := make([]byte, mlen)
	if _, err := io.ReadFull(br, mb); err != nil {
		return nil, err
	}
	l := &Layout{Method: string(mb)}
	for _, p := range []*int64{&l.RowBytes, &l.TotalBytes, &l.Unrouted} {
		if err := binary.Read(br, le, p); err != nil {
			return nil, err
		}
	}
	root, err := readNode(br, l)
	if err != nil {
		return nil, err
	}
	l.Root = root
	// Parts were appended in pre-order; verify the stored IDs agree so
	// PartitionsFor indexing stays valid.
	for i, p := range l.Parts {
		if int(p.ID) != i {
			return nil, fmt.Errorf("layout: partition ID %d at position %d", p.ID, i)
		}
		p.RowBytes = l.RowBytes
	}
	// The routing index is derived state: rebuild it so a decoded layout
	// routes exactly like the sealed original.
	l.buildIndex()
	return l, nil
}

func readBox(r io.Reader) (geom.Box, error) {
	le := binary.LittleEndian
	var dims uint16
	if err := binary.Read(r, le, &dims); err != nil {
		return geom.Box{}, err
	}
	if dims == 0 || dims > 1024 {
		return geom.Box{}, fmt.Errorf("layout: implausible box dimensionality %d", dims)
	}
	lo := make(geom.Point, dims)
	hi := make(geom.Point, dims)
	for i := range lo {
		if err := binary.Read(r, le, &lo[i]); err != nil {
			return geom.Box{}, err
		}
	}
	for i := range hi {
		if err := binary.Read(r, le, &hi[i]); err != nil {
			return geom.Box{}, err
		}
	}
	return geom.Box{Lo: lo, Hi: hi}, nil
}

func readNode(r io.Reader, l *Layout) (*Node, error) {
	le := binary.LittleEndian
	var tag uint8
	if err := binary.Read(r, le, &tag); err != nil {
		return nil, err
	}
	var desc Descriptor
	switch tag {
	case 0:
		b, err := readBox(r)
		if err != nil {
			return nil, err
		}
		desc = Rect{Box: b}
	case 1:
		outer, err := readBox(r)
		if err != nil {
			return nil, err
		}
		var nh uint32
		if err := binary.Read(r, le, &nh); err != nil {
			return nil, err
		}
		if nh > 1<<20 {
			return nil, fmt.Errorf("layout: implausible hole count %d", nh)
		}
		holes := make([]geom.Box, nh)
		for i := range holes {
			if holes[i], err = readBox(r); err != nil {
				return nil, err
			}
		}
		desc = NewIrregular(outer, holes)
	default:
		return nil, fmt.Errorf("layout: unknown descriptor tag %d", tag)
	}
	var isLeaf uint8
	if err := binary.Read(r, le, &isLeaf); err != nil {
		return nil, err
	}
	node := &Node{Desc: desc}
	if isLeaf == 1 {
		var id, fullRows int64
		if err := binary.Read(r, le, &id); err != nil {
			return nil, err
		}
		if err := binary.Read(r, le, &fullRows); err != nil {
			return nil, err
		}
		var np uint32
		if err := binary.Read(r, le, &np); err != nil {
			return nil, err
		}
		if np > 1<<20 {
			return nil, fmt.Errorf("layout: implausible precise-MBR count %d", np)
		}
		precise := make([]geom.Box, np)
		for i := range precise {
			var err error
			if precise[i], err = readBox(r); err != nil {
				return nil, err
			}
		}
		node.Part = &Partition{ID: ID(id), Desc: desc, FullRows: fullRows, Precise: precise}
		if np == 0 {
			node.Part.Precise = nil
		}
		l.Parts = append(l.Parts, node.Part)
	}
	var nc uint32
	if err := binary.Read(r, le, &nc); err != nil {
		return nil, err
	}
	if nc > 1<<20 {
		return nil, fmt.Errorf("layout: implausible child count %d", nc)
	}
	if isLeaf == 1 && nc > 0 {
		return nil, fmt.Errorf("layout: leaf with %d children", nc)
	}
	for i := uint32(0); i < nc; i++ {
		c, err := readNode(r, l)
		if err != nil {
			return nil, err
		}
		node.Children = append(node.Children, c)
	}
	return node, nil
}
