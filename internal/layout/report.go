package layout

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"time"

	"paw/internal/obs"
)

// Build metric names. The builders (internal/core, internal/qdtree,
// internal/kdtree) register these in the obs.Registry passed via their
// Params.Obs; BuildReport reads them back out of a Snapshot. They live here
// — the package every builder already imports — so the producer and the
// consumer cannot drift apart.
const (
	// Phase timers (cumulative ns across all workers).
	MetricConstructNs = "build_construct_ns"
	MetricSealNs      = "build_seal_ns"
	MetricMultiNs     = "build_multi_split_ns"
	MetricAxisNs      = "build_axis_split_ns"
	MetricRefineNs    = "build_refine_ns"

	// Split statistics (Alg. 1–3).
	MetricMultiTried        = "build_multi_split_tried_total"
	MetricMultiAccepted     = "build_multi_split_accepted_total"
	MetricAxisEvaluated     = "build_axis_candidates_evaluated_total"
	MetricAxisAccepted      = "build_axis_split_accepted_total"
	MetricExpansions        = "build_bmin_expansions_total"
	MetricExpansionFailures = "build_bmin_expansion_failures_total"

	// Ψ(α) policy decisions (Eq. 4): which split set a node was offered.
	MetricPolicyMultiAdmitted = "build_policy_multi_admitted_total"
	MetricPolicyAxisOnly      = "build_policy_axis_only_total"
	MetricPolicyTerminal      = "build_policy_terminal_total"

	// Recursion shape.
	MetricNodes       = "build_nodes_total"
	MetricRefineCalls = "build_refine_calls_total"
	MetricMaxDepth    = "build_max_depth"
)

// BuildReportSchema versions the report document; bump on breaking changes.
const BuildReportSchema = "paw/build-report/v1"

// Phase is one top-level wall-clock phase of a build pipeline (generate,
// sample, construct, route, ...). Phases are sequential, so their sum
// approximates the wall time — `pawcli stats` reports the coverage.
type Phase struct {
	Name string `json:"name"`
	Ns   int64  `json:"ns"`
}

// LevelStat counts tree nodes and physical partitions per depth.
type LevelStat struct {
	Depth  int `json:"depth"`
	Nodes  int `json:"nodes"`
	Leaves int `json:"leaves"`
}

// SplitStats aggregates the construction decisions of Algorithms 1–3.
type SplitStats struct {
	MultiGroupTried    int64 `json:"multi_group_tried"`
	MultiGroupAccepted int64 `json:"multi_group_accepted"`
	AxisCandidates     int64 `json:"axis_candidates_evaluated"`
	AxisAccepted       int64 `json:"axis_accepted"`
	Expansions         int64 `json:"bmin_expansions"`
	ExpansionFailures  int64 `json:"bmin_expansion_failures"`
	PolicyMulti        int64 `json:"policy_multi_admitted"`
	PolicyAxisOnly     int64 `json:"policy_axis_only"`
	PolicyTerminal     int64 `json:"policy_terminal"`
	RefineCalls        int64 `json:"refine_calls"`
	NodesVisited       int64 `json:"nodes_visited"`
	MaxDepth           int64 `json:"max_depth"`
}

// CostStats is the final cost decomposition of the built layout against the
// workload it was built for (Eq. 1–2).
type CostStats struct {
	WorkloadQueries int     `json:"workload_queries"`
	WorkloadBytes   int64   `json:"workload_bytes"`
	AvgQueryBytes   float64 `json:"avg_query_bytes"`
	ScanRatio       float64 `json:"scan_ratio"`
}

// BuildReport is the structured build artifact emitted by `pawcli build`
// and pawbench: phase timings, split statistics, tree shape and the final
// cost decomposition, plus the raw telemetry snapshot for ad-hoc digging.
// `pawcli stats` renders it.
type BuildReport struct {
	Schema      string `json:"schema"`
	Method      string `json:"method"`
	BuildInfo   string `json:"build_info,omitempty"`
	GeneratedAt string `json:"generated_at,omitempty"`

	WallNs int64   `json:"wall_ns"`
	Phases []Phase `json:"phases"`

	Partitions          int   `json:"partitions"`
	IrregularPartitions int   `json:"irregular_partitions"`
	SampleRows          int   `json:"sample_rows,omitempty"`
	RowBytes            int64 `json:"row_bytes"`
	TotalBytes          int64 `json:"total_bytes"`
	Unrouted            int64 `json:"unrouted,omitempty"`

	Levels []LevelStat `json:"levels,omitempty"`
	Splits SplitStats  `json:"splits"`
	Cost   *CostStats  `json:"cost,omitempty"`

	Telemetry obs.Snapshot `json:"telemetry"`
}

// NewBuildReport assembles a report from a sealed layout and a telemetry
// snapshot taken after the build. The caller fills the pipeline-level fields
// (Phases, WallNs, GeneratedAt, BuildInfo, SampleRows, Cost).
func NewBuildReport(l *Layout, snap obs.Snapshot) *BuildReport {
	r := &BuildReport{
		Schema:     BuildReportSchema,
		Method:     l.Method,
		Partitions: l.NumPartitions(),
		RowBytes:   l.RowBytes,
		TotalBytes: l.TotalBytes,
		Unrouted:   l.Unrouted,
		Telemetry:  snap,
		Splits: SplitStats{
			MultiGroupTried:    snap.Counter(MetricMultiTried),
			MultiGroupAccepted: snap.Counter(MetricMultiAccepted),
			AxisCandidates:     snap.Counter(MetricAxisEvaluated),
			AxisAccepted:       snap.Counter(MetricAxisAccepted),
			Expansions:         snap.Counter(MetricExpansions),
			ExpansionFailures:  snap.Counter(MetricExpansionFailures),
			PolicyMulti:        snap.Counter(MetricPolicyMultiAdmitted),
			PolicyAxisOnly:     snap.Counter(MetricPolicyAxisOnly),
			PolicyTerminal:     snap.Counter(MetricPolicyTerminal),
			RefineCalls:        snap.Counter(MetricRefineCalls),
			NodesVisited:       snap.Counter(MetricNodes),
			MaxDepth:           snap.Gauge(MetricMaxDepth),
		},
	}
	for _, p := range l.Parts {
		if p.Desc.Kind() == KindIrregular {
			r.IrregularPartitions++
		}
	}
	if l.Root != nil {
		var walk func(n *Node, depth int)
		walk = func(n *Node, depth int) {
			for len(r.Levels) <= depth {
				r.Levels = append(r.Levels, LevelStat{Depth: len(r.Levels)})
			}
			r.Levels[depth].Nodes++
			if n.IsLeaf() {
				r.Levels[depth].Leaves++
			}
			for _, c := range n.Children {
				walk(c, depth+1)
			}
		}
		walk(l.Root, 0)
	}
	return r
}

// PhaseNs returns the recorded duration of a named phase (0 when absent).
func (r *BuildReport) PhaseNs(name string) int64 {
	for _, p := range r.Phases {
		if p.Name == name {
			return p.Ns
		}
	}
	return 0
}

// PhaseCoverage returns Σ phase ns / wall ns — the fraction of the wall time
// the phases explain. The acceptance bar for `pawcli build` is ≥ 0.9.
func (r *BuildReport) PhaseCoverage() float64 {
	if r.WallNs <= 0 {
		return 0
	}
	var sum int64
	for _, p := range r.Phases {
		sum += p.Ns
	}
	return float64(sum) / float64(r.WallNs)
}

// WriteJSON writes the report as indented JSON.
func (r *BuildReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// WriteJSONFile writes the report to path.
func (r *BuildReport) WriteJSONFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := r.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadBuildReport loads a report written by WriteJSON.
func ReadBuildReport(rd io.Reader) (*BuildReport, error) {
	var r BuildReport
	if err := json.NewDecoder(rd).Decode(&r); err != nil {
		return nil, err
	}
	if r.Schema != BuildReportSchema {
		return nil, fmt.Errorf("layout: unsupported build report schema %q (want %q)", r.Schema, BuildReportSchema)
	}
	return &r, nil
}

// Render writes the human-readable view `pawcli stats` prints.
func (r *BuildReport) Render(w io.Writer) {
	fmt.Fprintf(w, "build report (%s)\n", r.Schema)
	if r.BuildInfo != "" || r.GeneratedAt != "" {
		fmt.Fprintf(w, "  build: %s  at: %s\n", r.BuildInfo, r.GeneratedAt)
	}
	fmt.Fprintf(w, "  method: %s   partitions: %d (%d irregular)   sample rows: %d\n",
		r.Method, r.Partitions, r.IrregularPartitions, r.SampleRows)
	if r.TotalBytes > 0 {
		fmt.Fprintf(w, "  data: %d bytes (%d/row), %d unrouted\n", r.TotalBytes, r.RowBytes, r.Unrouted)
	}

	if len(r.Phases) == 0 || r.WallNs <= 0 {
		// A build run with telemetry disabled records no phase timings;
		// "untraced" distinguishes that from a build whose phases measured 0.
		fmt.Fprintf(w, "\nphases: untraced (build ran with telemetry disabled)\n")
	} else {
		fmt.Fprintf(w, "\nphases (wall %v, coverage %.1f%%):\n",
			time.Duration(r.WallNs).Round(time.Microsecond), 100*r.PhaseCoverage())
		for _, p := range r.Phases {
			pct := 100 * float64(p.Ns) / float64(r.WallNs)
			fmt.Fprintf(w, "  %-12s %12v  %5.1f%%\n", p.Name, time.Duration(p.Ns).Round(time.Microsecond), pct)
		}
	}

	s := r.Splits
	fmt.Fprintf(w, "\nsplit statistics:\n")
	fmt.Fprintf(w, "  nodes visited: %d   max depth: %d\n", s.NodesVisited, s.MaxDepth)
	fmt.Fprintf(w, "  Ψ policy: %d multi-admitted, %d axis-only, %d terminal\n",
		s.PolicyMulti, s.PolicyAxisOnly, s.PolicyTerminal)
	fmt.Fprintf(w, "  multi-group (Alg. 1): %d tried, %d accepted; bmin expansions %d (%d failed)\n",
		s.MultiGroupTried, s.MultiGroupAccepted, s.Expansions, s.ExpansionFailures)
	fmt.Fprintf(w, "  axis-parallel (Alg. 2): %d candidates evaluated, %d accepted\n",
		s.AxisCandidates, s.AxisAccepted)
	if s.RefineCalls > 0 {
		fmt.Fprintf(w, "  data-aware refinement (§IV-E): %d leaves refined\n", s.RefineCalls)
	}

	if len(r.Levels) > 0 {
		fmt.Fprintf(w, "\npartitions per level:\n")
		for _, lv := range r.Levels {
			fmt.Fprintf(w, "  depth %2d: %5d nodes, %5d partitions\n", lv.Depth, lv.Nodes, lv.Leaves)
		}
	}

	if r.Cost != nil {
		c := r.Cost
		fmt.Fprintf(w, "\ncost decomposition (Eq. 1–2, %d queries):\n", c.WorkloadQueries)
		fmt.Fprintf(w, "  workload cost: %d bytes   avg/query: %.0f bytes   scan ratio: %.3f%%\n",
			c.WorkloadBytes, c.AvgQueryBytes, 100*c.ScanRatio)
	}

	if len(r.Telemetry.Timers) > 0 {
		fmt.Fprintf(w, "\nbuilder timers (cumulative across workers):\n")
		names := make([]string, 0, len(r.Telemetry.Timers))
		for n := range r.Telemetry.Timers {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			t := r.Telemetry.Timers[n]
			fmt.Fprintf(w, "  %-28s %6d calls  %12v\n", n, t.Count, time.Duration(t.TotalNs).Round(time.Microsecond))
		}
	}
}
