package layout

import (
	"strings"
	"testing"

	"paw/internal/geom"
)

func TestCostRows(t *testing.T) {
	pieces := []Piece{
		{Desc: NewRect(box2(0, 0, 5, 5)), Rows: 10},
		{Desc: NewRect(box2(5, 0, 10, 5)), Rows: 20},
	}
	queries := []geom.Box{
		box2(1, 1, 2, 2),     // hits piece 0 only
		box2(1, 1, 9, 4),     // hits both
		box2(20, 20, 21, 21), // hits none
	}
	if got := CostRows(pieces, queries); got != 10+30 {
		t.Errorf("CostRows = %d, want 40", got)
	}
	if got := CostRows(nil, queries); got != 0 {
		t.Errorf("no pieces cost = %d", got)
	}
	if got := CostRows(pieces, nil); got != 0 {
		t.Errorf("no queries cost = %d", got)
	}
}

func TestScanRatioUnrouted(t *testing.T) {
	// A layout that was never routed has TotalBytes 0 and must report a
	// zero ratio instead of dividing by zero.
	b := box2(0, 0, 1, 1)
	root := &Node{Desc: NewRect(b), Part: &Partition{Desc: NewRect(b)}}
	l := Seal("x", root, 8)
	if got := l.ScanRatio([]geom.Box{b}, nil); got != 0 {
		t.Errorf("unrouted ScanRatio = %v", got)
	}
}

func TestDescriptorAccessors(t *testing.T) {
	ir := NewIrregular(box2(0, 0, 10, 10), []geom.Box{box2(4, 4, 6, 6)})
	if ir.Region().IsEmpty() {
		t.Error("region must not be empty")
	}
	if ir.IsEmpty() {
		t.Error("descriptor must not be empty")
	}
	full := NewIrregular(box2(0, 0, 10, 10), []geom.Box{box2(-1, -1, 11, 11)})
	if !full.IsEmpty() {
		t.Error("fully covered descriptor must be empty")
	}
	r := NewRect(box2(0, 0, 1, 1))
	if r.Kind() != KindRect || ir.Kind() != KindIrregular {
		t.Error("kinds wrong")
	}
}

func TestLayoutString(t *testing.T) {
	outer := box2(0, 0, 10, 10)
	hole := box2(4, 4, 6, 6)
	gp := &Node{Desc: NewRect(hole), Part: &Partition{Desc: NewRect(hole)}}
	ipDesc := NewIrregular(outer, []geom.Box{hole})
	ip := &Node{Desc: ipDesc, Part: &Partition{Desc: ipDesc}}
	root := &Node{Desc: NewRect(outer), Children: []*Node{gp, ip}}
	l := Seal("paw", root, 8)
	s := l.String()
	for _, want := range []string{"paw", "2 partitions", "1 irregular"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q missing %q", s, want)
		}
	}
}

// failWriter errors after a byte budget, driving Encode's error branches.
type failWriter struct{ left int }

type failErr struct{}

func (failErr) Error() string { return "simulated write failure" }

func (w *failWriter) Write(p []byte) (int, error) {
	if w.left <= 0 {
		return 0, failErr{}
	}
	n := len(p)
	if n > w.left {
		n = w.left
	}
	w.left -= n
	if n < len(p) {
		return n, failErr{}
	}
	return n, nil
}

func TestEncodeWriteFailures(t *testing.T) {
	outer := box2(0, 0, 10, 10)
	hole := box2(4, 4, 6, 6)
	gp := &Node{Desc: NewRect(hole), Part: &Partition{Desc: NewRect(hole), Precise: []geom.Box{hole}}}
	ipDesc := NewIrregular(outer, []geom.Box{hole})
	ip := &Node{Desc: ipDesc, Part: &Partition{Desc: ipDesc}}
	root := &Node{Desc: NewRect(outer), Children: []*Node{gp, ip}}
	l := Seal("paw", root, 8)
	for _, cut := range []int{0, 2, 4, 6, 8, 15, 30, 60, 120, 200} {
		if err := l.Encode(&failWriter{left: cut}); err == nil {
			t.Errorf("Encode with %d-byte budget must fail", cut)
		}
	}
	// An unknown descriptor type must be rejected rather than silently
	// mis-serialised.
	bad := Seal("x", &Node{Desc: fakeDesc{}, Part: &Partition{Desc: fakeDesc{}}}, 8)
	var sink strings.Builder
	if err := bad.Encode(&sink); err == nil {
		t.Error("unknown descriptor type must error")
	}
}

type fakeDesc struct{}

func (fakeDesc) Intersects(geom.Box) bool { return false }
func (fakeDesc) Contains(geom.Point) bool { return false }
func (fakeDesc) MBR() geom.Box            { return geom.Box{Lo: geom.Point{0}, Hi: geom.Point{1}} }
func (fakeDesc) Kind() Kind               { return Kind(42) }
