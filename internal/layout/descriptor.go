// Package layout defines partition layouts: partitions with rectangular or
// irregular-shaped descriptors (paper §IV-B), the partition tree produced by
// recursive construction (Fig. 10), record routing, the I/O cost model of
// Eq. 1–2, the theoretical lower bound, and layout validation.
package layout

import (
	"fmt"

	"paw/internal/geom"
)

// Kind enumerates descriptor shapes.
type Kind int

const (
	// KindRect is an ordinary rectangular partition descriptor.
	KindRect Kind = iota
	// KindIrregular is an irregular-shaped partition: an outer box minus a
	// set of rectangular holes (the grouped partitions carved out of it).
	KindIrregular
)

// String names the kind for logs and layout summaries.
func (k Kind) String() string {
	switch k {
	case KindRect:
		return "rect"
	case KindIrregular:
		return "irregular"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Descriptor is the semantic description of the records a partition holds.
// The master node keeps descriptors in memory and uses them to decide which
// partitions a query must scan (Fig. 4).
type Descriptor interface {
	// Intersects reports whether a range query must scan this partition.
	Intersects(q geom.Box) bool
	// Contains reports whether a record belongs in this partition's region.
	// Routing resolves boundary ties by child order, so Contains may accept
	// boundary points that a sibling also accepts.
	Contains(p geom.Point) bool
	// MBR is the minimum bounding rectangle of the region.
	MBR() geom.Box
	// Kind tags the descriptor shape.
	Kind() Kind
}

// Rect is a rectangular descriptor.
type Rect struct {
	Box geom.Box
}

// NewRect wraps a box as a descriptor.
func NewRect(b geom.Box) Rect { return Rect{Box: b.Clone()} }

// Intersects implements Descriptor.
func (r Rect) Intersects(q geom.Box) bool { return r.Box.Intersects(q) }

// Contains implements Descriptor.
func (r Rect) Contains(p geom.Point) bool { return r.Box.Contains(p) }

// MBR implements Descriptor.
func (r Rect) MBR() geom.Box { return r.Box }

// Kind implements Descriptor.
func (r Rect) Kind() Kind { return KindRect }

// Irregular is an irregular-shaped descriptor: Outer minus Holes. Hole
// boundaries belong to the holes (the grouped partitions carved out), so the
// region's hole-adjacent faces are open: a query lying exactly inside a
// grouped partition — boundary contact included — never scans the irregular
// partition. This is what makes Multi-Group Split profitable (§IV-B).
type Irregular struct {
	Outer  geom.Box
	Holes  []geom.Box
	region geom.OpenRegion
}

// NewIrregular builds the irregular descriptor Outer \ (holes...).
func NewIrregular(outer geom.Box, holes []geom.Box) Irregular {
	hs := make([]geom.Box, len(holes))
	for i, h := range holes {
		hs[i] = h.Clone()
	}
	return Irregular{
		Outer:  outer.Clone(),
		Holes:  hs,
		region: geom.OpenRegionFromDifference(outer, holes),
	}
}

// Intersects implements Descriptor: a query scans the partition only when it
// reaches past every hole's closed boundary into the leftover region.
func (ir Irregular) Intersects(q geom.Box) bool { return ir.region.IntersectsBox(q) }

// Contains implements Descriptor. Points on hole boundaries are rejected —
// they belong to the grouped partition that owns the hole.
func (ir Irregular) Contains(p geom.Point) bool { return ir.region.Contains(p) }

// MBR implements Descriptor.
func (ir Irregular) MBR() geom.Box { return ir.Outer }

// Kind implements Descriptor.
func (ir Irregular) Kind() Kind { return KindIrregular }

// Region exposes the decomposed region (for visualisation and tests).
func (ir Irregular) Region() geom.OpenRegion { return ir.region }

// IsEmpty reports whether the region holds no points at all.
func (ir Irregular) IsEmpty() bool { return ir.region.IsEmpty() }
