package layout

import (
	"testing"

	"paw/internal/dataset"
	"paw/internal/geom"
)

// quadLayout builds the patching fixture at scale s: root → {left, right},
// left split horizontally, right split vertically; four leaves over [0,s]².
func quadLayout(s float64) (*Layout, *Node) {
	leaf := func(b geom.Box) *Node {
		return &Node{Desc: NewRect(b), Part: &Partition{Desc: NewRect(b)}}
	}
	left := &Node{Desc: NewRect(box2(0, 0, 0.5*s, s)), Children: []*Node{
		leaf(box2(0, 0, 0.5*s, 0.5*s)), leaf(box2(0, 0.5*s, 0.5*s, s)),
	}}
	right := &Node{Desc: NewRect(box2(0.5*s, 0, s, s)), Children: []*Node{
		leaf(box2(0.5*s, 0, 0.75*s, s)), leaf(box2(0.75*s, 0, s, s)),
	}}
	root := &Node{Desc: NewRect(box2(0, 0, s, s)), Children: []*Node{left, right}}
	return Seal("patch-test", root, 16), right
}

// horizontalRepl replaces the right half (at scale s) with a horizontal
// split carrying the given row counts.
func horizontalRepl(s, rows0, rows1 int64) *Node {
	fs := float64(s)
	leaf := func(b geom.Box, n int64) *Node {
		return &Node{Desc: NewRect(b), Part: &Partition{Desc: NewRect(b), FullRows: n}}
	}
	return &Node{Desc: NewRect(box2(0.5*fs, 0, fs, fs)), Children: []*Node{
		leaf(box2(0.5*fs, 0, fs, 0.5*fs), rows0), leaf(box2(0.5*fs, 0.5*fs, fs, fs), rows1),
	}}
}

func TestPatchSubtreeDiffShape(t *testing.T) {
	l, right := quadLayout(10)
	for i, p := range l.Parts {
		p.FullRows = int64(100 * (i + 1))
	}
	l.TotalBytes = 12345
	l.Unrouted = 3

	nl, d, err := PatchSubtree(l, right, horizontalRepl(10, 300, 400))
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Renamed) != 2 || len(d.Added) != 2 || len(d.Removed) != 2 {
		t.Fatalf("diff = %+v, want 2 renamed / 2 added / 2 removed", d)
	}
	// Pre-order: left leaves keep IDs 0,1; the replacement takes 2,3.
	if d.Renamed[0] != 0 || d.Renamed[1] != 1 {
		t.Fatalf("renamed = %v, want identity on the left leaves", d.Renamed)
	}
	for i, id := range d.Removed {
		if int(id) != i+2 {
			t.Fatalf("removed = %v, want [2 3]", d.Removed)
		}
	}
	for i, id := range d.Added {
		if int(id) != i+2 {
			t.Fatalf("added = %v, want [2 3]", d.Added)
		}
	}
	// Carried-over totals and preserved row counts.
	if nl.TotalBytes != l.TotalBytes || nl.Unrouted != l.Unrouted {
		t.Fatalf("totals not carried: %d/%d vs %d/%d", nl.TotalBytes, nl.Unrouted, l.TotalBytes, l.Unrouted)
	}
	if nl.Parts[0].FullRows != 100 || nl.Parts[1].FullRows != 200 {
		t.Fatal("renamed partitions lost their row counts")
	}
	if nl.Parts[2].FullRows != 300 || nl.Parts[3].FullRows != 400 {
		t.Fatal("replacement row counts not preserved")
	}
	if nl.Parts[0].RowBytes != l.RowBytes {
		t.Fatalf("new partitions carry row size %d, want %d", nl.Parts[0].RowBytes, l.RowBytes)
	}
}

func TestPatchSubtreeLeavesOldLayoutIntact(t *testing.T) {
	// Unit-scale fixture so the uniform unit-square data spreads over all
	// four leaves.
	l, right := quadLayout(1)
	data := dataset.Uniform(2000, 2, 5)
	l.Route(data)
	before := make([]int64, len(l.Parts))
	for i, p := range l.Parts {
		before[i] = p.FullRows
	}

	nl, _, err := PatchSubtree(l, right, horizontalRepl(1, 0, 0))
	if err != nil {
		t.Fatal(err)
	}
	// Mutating the new layout must not leak into the old one.
	nl.Parts[0].FullRows += 999
	nl.Parts[0].Desc = NewRect(box2(0, 0, 1, 1))
	for i, p := range l.Parts {
		if p.FullRows != before[i] {
			t.Fatalf("old partition %d rows changed: %d -> %d", i, before[i], p.FullRows)
		}
		if p.ID != ID(i) {
			t.Fatalf("old partition %d renumbered to %d", i, p.ID)
		}
	}
	// The old tree still routes every record the same way.
	l.Route(data)
	for i, p := range l.Parts {
		if p.FullRows != before[i] {
			t.Fatalf("old layout routing changed for partition %d", i)
		}
	}
}

func TestPatchSubtreeRejectsBadInputs(t *testing.T) {
	l, right := quadLayout(10)
	repl := horizontalRepl(10, 0, 0)
	if _, _, err := PatchSubtree(nil, right, repl); err == nil {
		t.Error("nil layout must be rejected")
	}
	if _, _, err := PatchSubtree(l, nil, repl); err == nil {
		t.Error("nil target must be rejected")
	}
	if _, _, err := PatchSubtree(l, right, nil); err == nil {
		t.Error("nil replacement must be rejected")
	}
	// A node that is not part of the layout (structurally identical copy).
	_, foreign := quadLayout(10)
	if _, _, err := PatchSubtree(l, foreign, repl); err == nil {
		t.Error("foreign target node must be rejected")
	}
	// Region mismatch.
	badRepl := horizontalRepl(10, 0, 0)
	badRepl.Desc = NewRect(box2(5, 0, 9, 10))
	if _, _, err := PatchSubtree(l, right, badRepl); err == nil {
		t.Error("replacement covering a different region must be rejected")
	}
	// Replacement with no leaves.
	empty := &Node{Desc: NewRect(box2(5, 0, 10, 10))}
	if _, _, err := PatchSubtree(l, right, empty); err == nil {
		t.Error("leafless replacement must be rejected")
	}
}

func TestSubtreeForPicksSmallestRectNode(t *testing.T) {
	l, right := quadLayout(10)
	// A query inside the right half resolves to the right subtree.
	if got := l.SubtreeFor(box2(6, 1, 9, 9)); got != right {
		t.Fatalf("SubtreeFor(right-half query) = %v, want the right subtree", got.Desc.MBR())
	}
	// A query spanning both halves resolves to the root.
	if got := l.SubtreeFor(box2(4, 4, 6, 6)); got != l.Root {
		t.Fatalf("SubtreeFor(spanning query) = %v, want the root", got.Desc.MBR())
	}
	// Never descends to a leaf: the right subtree's children are leaves, so
	// even a query inside one leaf stops at the right subtree.
	if got := l.SubtreeFor(box2(5.5, 1, 6, 2)); got != right {
		t.Fatalf("SubtreeFor(leaf-sized query) = %v, want the right subtree", got.Desc.MBR())
	}
	if (*Layout)(nil).SubtreeFor(box2(0, 0, 1, 1)) != nil {
		t.Fatal("nil layout must yield nil")
	}
}

func TestSubtreeForStopsAboveIrregularNodes(t *testing.T) {
	// right child is an irregular internal node: SubtreeFor must not
	// descend into it even for a fully contained query.
	leaf := func(d Descriptor) *Node {
		return &Node{Desc: d, Part: &Partition{Desc: d}}
	}
	outer := box2(5, 0, 10, 10)
	hole := box2(6, 4, 7, 6)
	irr := &Node{Desc: NewIrregular(outer, []geom.Box{hole}), Children: []*Node{
		leaf(NewIrregular(outer, []geom.Box{hole})),
	}}
	left := leaf(NewRect(box2(0, 0, 5, 10)))
	root := &Node{Desc: NewRect(box2(0, 0, 10, 10)), Children: []*Node{left, irr}}
	l := Seal("patch-test", root, 16)

	if got := l.SubtreeFor(box2(8, 8, 9, 9)); got != l.Root {
		t.Fatalf("SubtreeFor must stop above irregular descriptors, got %v", got.Desc.MBR())
	}
}
