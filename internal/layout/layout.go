package layout

import (
	"fmt"
	"sync"

	"paw/internal/dataset"
	"paw/internal/geom"
	"paw/internal/rtree"
)

// ID identifies a physical (leaf) partition.
type ID int

// Partition is a leaf of the partition tree: a physical block-set in the
// storage layer. SampleRows holds the layout-construction sample rows that
// fell into the partition; FullRows is set by routing the complete dataset.
type Partition struct {
	ID   ID
	Desc Descriptor

	// SampleRows are indices into the construction sample.
	SampleRows []int
	// FullRows is the number of records of the full dataset routed here.
	FullRows int64
	// RowBytes is the simulated size of one record.
	RowBytes int64

	// Precise is the optional precise descriptor (§V-A): a small set of
	// MBRs that collectively cover the partition's records. When non-empty
	// the master may skip the partition even if Desc intersects the query.
	Precise []geom.Box
}

// Bytes returns the partition's physical size.
func (p *Partition) Bytes() int64 { return p.FullRows * p.RowBytes }

// PruneWithPrecise reports whether the precise descriptor proves the query
// cannot touch this partition (no MBR intersects q). With no precise
// descriptor installed it always returns false.
func (p *Partition) PruneWithPrecise(q geom.Box) bool {
	if len(p.Precise) == 0 {
		return false
	}
	for _, m := range p.Precise {
		if m.Intersects(q) {
			return false
		}
	}
	return true
}

// Node is a vertex of the partition tree (Fig. 10). Internal nodes keep only
// descriptors for query routing; leaves own physical partitions.
type Node struct {
	Desc     Descriptor
	Children []*Node
	Part     *Partition // non-nil iff leaf

	// childIndex accelerates point routing through wide fan-outs
	// (Multi-Group nodes): a packed box index over the children's MBRs,
	// built at Seal/Decode, nil for narrow nodes. Derived state — never
	// serialised, read-only after sealing.
	childIndex *rtree.BoxIndex
}

// AcceptPoint implements rtree.PointAccepter for the child index: candidate
// child i truly contains p. Exported only as index plumbing.
func (n *Node) AcceptPoint(i int, p geom.Point) bool { return n.Children[i].Desc.Contains(p) }

// IsLeaf reports whether the node is a physical partition.
func (n *Node) IsLeaf() bool { return n.Part != nil }

// Walk visits every node in pre-order.
func (n *Node) Walk(f func(*Node)) {
	f(n)
	for _, c := range n.Children {
		c.Walk(f)
	}
}

// Leaves returns the leaf nodes in pre-order.
func (n *Node) Leaves() []*Node {
	var out []*Node
	n.Walk(func(m *Node) {
		if m.IsLeaf() {
			out = append(out, m)
		}
	})
	return out
}

// routeDown descends from n to the leaf whose region contains p. Children
// are tested in order, so builders must place irregular partitions after the
// grouped partitions carved out of them (boundary points then resolve to the
// group). Returns nil when no child accepts the point. Wide nodes descend
// through their child index, which preserves the first-matching-child
// contract (packed indexes return the smallest accepted index).
func (n *Node) routeDown(p geom.Point) *Partition {
	cur := n
	for !cur.IsLeaf() {
		var next *Node
		if cur.childIndex != nil {
			if i := cur.childIndex.FirstContaining(p, cur); i >= 0 {
				next = cur.Children[i]
			}
		} else {
			for _, c := range cur.Children {
				if c.Desc.Contains(p) {
					next = c
					break
				}
			}
		}
		if next == nil {
			return nil
		}
		cur = next
	}
	return cur.Part
}

// routeDownLinear is the retained linear reference for routeDown: every
// level scans its children in order with no index. Differential tests and
// the routing benchmark compare against it.
func (n *Node) routeDownLinear(p geom.Point) *Partition {
	cur := n
	for !cur.IsLeaf() {
		var next *Node
		for _, c := range cur.Children {
			if c.Desc.Contains(p) {
				next = c
				break
			}
		}
		if next == nil {
			return nil
		}
		cur = next
	}
	return cur.Part
}

// Layout is a complete partition layout over a dataset.
type Layout struct {
	// Method records which algorithm produced the layout ("paw",
	// "qd-tree", "kd-tree"), for reporting.
	Method string
	// Root is the partition tree; Root.Desc covers the whole domain.
	Root *Node
	// Parts are the physical partitions (the tree's leaves), indexed by ID.
	Parts []*Partition
	// RowBytes is the simulated record size.
	RowBytes int64
	// TotalBytes is the routed dataset's total size.
	TotalBytes int64
	// Unrouted counts records no leaf accepted (should be 0; kept as a
	// safety signal for floating-point edge cases).
	Unrouted int64

	// index is the partition-level routing index over the descriptor MBRs,
	// built at Seal/Decode (see index.go). Derived, immutable state: nil on
	// hand-assembled layouts, in which case every query path falls back to
	// the linear reference.
	index *rtree.BoxIndex
}

// Seal numbers the leaves, wires Parts, builds the routing index and returns
// the layout. Builders call it once the tree is final.
func Seal(method string, root *Node, rowBytes int64) *Layout {
	l := &Layout{Method: method, Root: root, RowBytes: rowBytes}
	for _, leaf := range root.Leaves() {
		leaf.Part.ID = ID(len(l.Parts))
		leaf.Part.RowBytes = rowBytes
		l.Parts = append(l.Parts, leaf.Part)
	}
	l.buildIndex()
	return l
}

// Route assigns every record of data to a leaf partition, setting FullRows
// and TotalBytes. It reproduces the paper's construction protocol: the
// logical layout is computed on a sample, then the full dataset is routed
// through it (§VI-A). Route may be called repeatedly; counts are reset.
func (l *Layout) Route(data *dataset.Dataset) {
	for _, p := range l.Parts {
		p.FullRows = 0
	}
	l.Unrouted = 0
	cols := hoistColumns(data)
	pt := make(geom.Point, len(cols))
	for i := 0; i < data.NumRows(); i++ {
		for d, col := range cols {
			pt[d] = col[i]
		}
		if part := l.Root.routeDown(pt); part != nil {
			part.FullRows++
		} else {
			l.Unrouted++
		}
	}
	l.TotalBytes = int64(data.NumRows()) * l.RowBytes
}

// hoistColumns caches the dataset's contiguous column slices so routing hot
// loops probe cols[d][r] directly instead of calling data.At per (row, dim).
func hoistColumns(data *dataset.Dataset) [][]float64 {
	cols := make([][]float64, data.Dims())
	for d := range cols {
		cols[d] = data.Column(d)
	}
	return cols
}

// RouteParallel is Route with the row scan fanned out over up to workers
// goroutines; results are identical to Route. Routing dominates layout
// materialisation time (Table II), so the block store uses this on
// multi-core hosts.
func (l *Layout) RouteParallel(data *dataset.Dataset, workers int) {
	n := data.NumRows()
	if workers < 2 || n < 4096 {
		l.Route(data)
		return
	}
	if workers > n {
		workers = n
	}
	cols := hoistColumns(data)
	nParts := len(l.Parts)
	counts := make([][]int64, workers)
	unrouted := make([]int64, workers)
	var wg sync.WaitGroup
	chunk := (n + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			break
		}
		counts[w] = make([]int64, nParts)
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			pt := make(geom.Point, len(cols))
			for i := lo; i < hi; i++ {
				for d, col := range cols {
					pt[d] = col[i]
				}
				if part := l.Root.routeDown(pt); part != nil {
					counts[w][part.ID]++
				} else {
					unrouted[w]++
				}
			}
		}(w, lo, hi)
	}
	wg.Wait()
	for _, p := range l.Parts {
		p.FullRows = 0
	}
	l.Unrouted = 0
	for w := range counts {
		if counts[w] == nil {
			continue
		}
		for id, c := range counts[w] {
			l.Parts[id].FullRows += c
		}
		l.Unrouted += unrouted[w]
	}
	l.TotalBytes = int64(n) * l.RowBytes
}

// RouteIndices routes only the given rows; used to route record subsets to
// build precise descriptors per partition.
func (l *Layout) RouteIndices(data *dataset.Dataset, idx []int) map[ID][]int {
	out := make(map[ID][]int)
	cols := hoistColumns(data)
	pt := make(geom.Point, len(cols))
	for _, i := range idx {
		for d, col := range cols {
			pt[d] = col[i]
		}
		if part := l.Root.routeDown(pt); part != nil {
			out[part.ID] = append(out[part.ID], i)
		}
	}
	return out
}

// NumPartitions returns the number of physical partitions.
func (l *Layout) NumPartitions() int { return len(l.Parts) }

// String summarises the layout.
func (l *Layout) String() string {
	irr := 0
	for _, p := range l.Parts {
		if p.Desc.Kind() == KindIrregular {
			irr++
		}
	}
	return fmt.Sprintf("%s layout: %d partitions (%d irregular), %d bytes",
		l.Method, len(l.Parts), irr, l.TotalBytes)
}
