package layout

import (
	"bytes"
	"math/rand"
	"testing"
)

// FuzzDecode asserts the layout reader never panics on arbitrary bytes and
// that whatever it accepts round-trips.
func FuzzDecode(f *testing.F) {
	// Seed with a real encoded layout plus mutations.
	l, _ := fuzzGrid()
	var buf bytes.Buffer
	if err := l.Encode(&buf); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte{})
	f.Add([]byte{0x4c, 0x57, 0x41, 0x50}) // magic only
	f.Add(bytes.Repeat([]byte{0xff}, 64))

	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := Decode(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Accepted layouts must re-encode.
		var out bytes.Buffer
		if err := got.Encode(&out); err != nil {
			t.Fatalf("accepted layout failed to re-encode: %v", err)
		}
		again, err := Decode(&out)
		if err != nil {
			t.Fatalf("re-encoded layout failed to decode: %v", err)
		}
		if again.NumPartitions() != got.NumPartitions() {
			t.Fatal("round trip changed partition count")
		}
	})
}

// FuzzRoutingDifferential drives the random-layout generator from a fuzzed
// seed and asserts the sealed routing index answers PartitionsFor, QueryCost
// and point routing byte-identically to the retained linear reference —
// including after an encode/decode round trip, which rebuilds the index from
// scratch.
func FuzzRoutingDifferential(f *testing.F) {
	for _, seed := range []int64{0, 1, 7, 42, 1 << 40, -3} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, seed int64) {
		r := rand.New(rand.NewSource(seed))
		l := randomLayout(r)
		diffRouting(t, r, l)

		var buf bytes.Buffer
		if err := l.Encode(&buf); err != nil {
			t.Fatalf("encode: %v", err)
		}
		back, err := Decode(&buf)
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		diffRouting(t, rand.New(rand.NewSource(seed+1)), back)
	})
}

// fuzzGrid builds a small routed layout for fuzz seeding without the testing
// helpers (which require *testing.T).
func fuzzGrid() (*Layout, error) {
	mk := func(b [4]float64) *Node {
		bx := box2(b[0], b[1], b[2], b[3])
		return &Node{Desc: NewRect(bx), Part: &Partition{Desc: NewRect(bx)}}
	}
	root := &Node{Desc: NewRect(box2(0, 0, 10, 10)), Children: []*Node{
		mk([4]float64{0, 0, 5, 10}), mk([4]float64{5, 0, 10, 10}),
	}}
	return Seal("fuzz", root, 16), nil
}
