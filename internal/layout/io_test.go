package layout

import (
	"bytes"
	"testing"

	"paw/internal/geom"
)

func TestLayoutRoundTrip(t *testing.T) {
	l, _ := grid4(t)
	l.Parts[0].Precise = []geom.Box{box2(1, 1, 2, 2)}
	var buf bytes.Buffer
	if err := l.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Method != l.Method || got.RowBytes != l.RowBytes ||
		got.TotalBytes != l.TotalBytes || got.Unrouted != l.Unrouted {
		t.Fatalf("header mismatch: %+v", got)
	}
	if got.NumPartitions() != l.NumPartitions() {
		t.Fatalf("partitions: %d vs %d", got.NumPartitions(), l.NumPartitions())
	}
	for i, p := range l.Parts {
		q := got.Parts[i]
		if q.ID != p.ID || q.FullRows != p.FullRows || q.RowBytes != p.RowBytes {
			t.Errorf("partition %d mismatch: %+v vs %+v", i, q, p)
		}
		if !q.Desc.MBR().Equal(p.Desc.MBR()) {
			t.Errorf("partition %d descriptor mismatch", i)
		}
		if len(q.Precise) != len(p.Precise) {
			t.Errorf("partition %d precise count %d vs %d", i, len(q.Precise), len(p.Precise))
		}
	}
	// Routing decisions must be identical.
	for _, q := range []geom.Box{box2(1, 1, 2, 2), box2(1, 1, 7, 7), box2(3, 3, 4, 4)} {
		a := l.PartitionsFor(q)
		b := got.PartitionsFor(q)
		if len(a) != len(b) {
			t.Fatalf("PartitionsFor(%v): %v vs %v", q, a, b)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("PartitionsFor(%v): %v vs %v", q, a, b)
			}
		}
	}
}

func TestLayoutRoundTripIrregular(t *testing.T) {
	outer := box2(0, 0, 10, 10)
	gpBox := box2(4, 4, 6, 6)
	gp := &Node{Desc: NewRect(gpBox), Part: &Partition{Desc: NewRect(gpBox)}}
	ipDesc := NewIrregular(outer, []geom.Box{gpBox})
	ip := &Node{Desc: ipDesc, Part: &Partition{Desc: ipDesc}}
	root := &Node{Desc: NewRect(outer), Children: []*Node{gp, ip}}
	l := Seal("paw", root, 32)
	l.Parts[0].FullRows = 7
	l.Parts[1].FullRows = 13
	l.TotalBytes = 640

	var buf bytes.Buffer
	if err := l.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	ir, ok := got.Parts[1].Desc.(Irregular)
	if !ok {
		t.Fatalf("partition 1 descriptor is %T, want Irregular", got.Parts[1].Desc)
	}
	if len(ir.Holes) != 1 || !ir.Holes[0].Equal(gpBox) {
		t.Errorf("holes not preserved: %v", ir.Holes)
	}
	// The reconstructed open region must behave identically.
	if ir.Intersects(box2(4.5, 4.5, 5.5, 5.5)) {
		t.Error("query inside the hole must not intersect after round trip")
	}
	if !ir.Intersects(box2(0, 0, 1, 1)) {
		t.Error("frame query must intersect after round trip")
	}
}

func TestLayoutReadRejectsGarbage(t *testing.T) {
	if _, err := Decode(bytes.NewReader([]byte{9, 9, 9, 9})); err == nil {
		t.Error("bad magic must error")
	}
	if _, err := Decode(bytes.NewReader(nil)); err == nil {
		t.Error("empty input must error")
	}
	l, _ := grid4(t)
	var buf bytes.Buffer
	if err := l.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	for _, cut := range []int{10, buf.Len() / 2, buf.Len() - 3} {
		if _, err := Decode(bytes.NewReader(buf.Bytes()[:cut])); err == nil {
			t.Errorf("truncation at %d must error", cut)
		}
	}
	// Corrupt the descriptor tag of the root.
	b := append([]byte(nil), buf.Bytes()...)
	b[4+2+2+len(l.Method)+24] = 77 // first node's descTag
	if _, err := Decode(bytes.NewReader(b)); err == nil {
		t.Error("unknown descriptor tag must error")
	}
}
