package layout

import (
	"sync"

	"paw/internal/geom"
	"paw/internal/parbuild"
	"paw/internal/rtree"
)

// Routing index: a sealed layout carries an immutable box R-tree over its
// partition descriptor MBRs (and, per tree node with a wide fan-out, over its
// child MBRs), so the master's per-query work — PartitionsFor, QueryCost and
// point routing — visits only the partitions whose MBR can match, instead of
// scanning every descriptor linearly.
//
// Exactness guarantee: the index is a pure pre-filter. Every candidate it
// yields is confirmed with the same exact predicates the linear reference
// uses (Descriptor.Intersects / Descriptor.Contains / PruneWithPrecise), and
// the MBR test can never exclude a true match because a descriptor's region
// is contained in its MBR. Candidates arrive in ascending ID order (the
// index is packed in partition-ID order, which Seal assigns in tree
// pre-order), so indexed results are byte-identical to the linear scans —
// property- and fuzz-tested in index_test.go / fuzz_test.go.
const (
	// partLeafCap is the leaf capacity of the partition-level index.
	partLeafCap = 16
	// childLeafCap is the leaf capacity of per-node child indexes.
	childLeafCap = 4
	// childIndexMinFanout is the child count below which a linear scan of
	// the children beats an index probe (axis splits have fan-out 2; only
	// Multi-Group nodes grow wide).
	childIndexMinFanout = 8
)

// buildIndex (re)builds the routing index. Seal and Decode call it once the
// partition list and tree are final; the index is derived state and is never
// serialised.
func (l *Layout) buildIndex() {
	if len(l.Parts) > 0 {
		boxes := make([]geom.Box, len(l.Parts))
		for i, p := range l.Parts {
			boxes[i] = p.Desc.MBR()
		}
		l.index = rtree.PackBoxes(boxes, partLeafCap)
	} else {
		l.index = nil
	}
	if l.Root == nil {
		return
	}
	l.Root.Walk(func(n *Node) {
		if len(n.Children) >= childIndexMinFanout {
			cb := make([]geom.Box, len(n.Children))
			for i, c := range n.Children {
				cb[i] = c.Desc.MBR()
			}
			n.childIndex = rtree.PackBoxes(cb, childLeafCap)
		} else {
			n.childIndex = nil
		}
	})
}

// IndexHeight reports the height of the partition-level routing index — 0
// when the layout is unsealed (no index) or empty.
func (l *Layout) IndexHeight() int { return l.index.Height() }

// candPool recycles candidate-index buffers across concurrent searches, so
// the indexed query paths allocate nothing in steady state.
var candPool = sync.Pool{New: func() any { b := make([]int, 0, 64); return &b }}

// AppendPartitionsFor appends the IDs of the partitions query q must scan to
// dst (in ID order, like PartitionsFor) and returns the extended slice. It
// allocates nothing when dst has capacity — the routing hot path for callers
// that stream many queries. Safe for concurrent use.
func (l *Layout) AppendPartitionsFor(dst []ID, q geom.Box) []ID {
	if l.index == nil {
		return l.appendPartitionsForLinear(dst, q)
	}
	bp := candPool.Get().(*[]int)
	cand := l.index.AppendIntersecting((*bp)[:0], q)
	for _, i := range cand {
		p := l.Parts[i]
		if p.Desc.Intersects(q) && !p.PruneWithPrecise(q) {
			dst = append(dst, p.ID)
		}
	}
	*bp = cand[:0]
	candPool.Put(bp)
	return dst
}

// AppendPartitionsForLinear is the retained linear reference for
// AppendPartitionsFor: a full descriptor scan with the same append contract.
// Kept for differential tests and the routing benchmark's baseline.
func (l *Layout) AppendPartitionsForLinear(dst []ID, q geom.Box) []ID {
	return l.appendPartitionsForLinear(dst, q)
}

// appendPartitionsForLinear is the append form of PartitionsForLinear.
func (l *Layout) appendPartitionsForLinear(dst []ID, q geom.Box) []ID {
	for _, p := range l.Parts {
		if p.Desc.Intersects(q) && !p.PruneWithPrecise(q) {
			dst = append(dst, p.ID)
		}
	}
	return dst
}

// batchMinChunk is the smallest per-worker chunk of a batched query sweep;
// below it, fan-out overhead exceeds the routing work.
const batchMinChunk = 8

// PartitionsForBatch routes a whole query set, fanning the sweep over up to
// workers goroutines (0 selects GOMAXPROCS, 1 is serial). out[i] equals
// PartitionsFor(queries[i]) exactly, at every worker count.
func (l *Layout) PartitionsForBatch(queries []geom.Box, workers int) [][]ID {
	out := make([][]ID, len(queries))
	pool := parbuild.New(workers)
	pool.FanChunks(pool.RootSlot(), len(queries), batchMinChunk, func(_, lo, hi, _ int) {
		for i := lo; i < hi; i++ {
			out[i] = l.AppendPartitionsFor(nil, queries[i])
		}
	})
	return out
}

// QueryCosts returns QueryCost(queries[i], extras) for every query, fanning
// the sweep over up to workers goroutines (0 selects GOMAXPROCS, 1 is
// serial). The result is identical at every worker count.
func (l *Layout) QueryCosts(queries []geom.Box, extras Extras, workers int) []int64 {
	out := make([]int64, len(queries))
	pool := parbuild.New(workers)
	pool.FanChunks(pool.RootSlot(), len(queries), batchMinChunk, func(_, lo, hi, _ int) {
		for i := lo; i < hi; i++ {
			out[i] = l.QueryCost(queries[i], extras)
		}
	})
	return out
}

// WorkloadCostParallel is WorkloadCost with the per-query costing fanned over
// up to workers goroutines (0 selects GOMAXPROCS, 1 is serial). Summation
// order differs from WorkloadCost but integer addition makes the total
// identical.
func (l *Layout) WorkloadCostParallel(queries []geom.Box, extras Extras, workers int) int64 {
	pool := parbuild.New(workers)
	partial := make([]int64, pool.Workers())
	pool.FanChunks(pool.RootSlot(), len(queries), batchMinChunk, func(c, lo, hi, _ int) {
		var s int64
		for i := lo; i < hi; i++ {
			s += l.QueryCost(queries[i], extras)
		}
		partial[c] = s
	})
	var total int64
	for _, s := range partial {
		total += s
	}
	return total
}

// Locate routes a point to its leaf partition through the index-accelerated
// tree descent (nil when no leaf accepts it). Safe for concurrent use.
func (l *Layout) Locate(p geom.Point) *Partition { return l.Root.routeDown(p) }

// LocateLinear is the retained linear reference for Locate: the plain
// first-matching-child descent. Kept for differential tests and the routing
// benchmark's baseline.
func (l *Layout) LocateLinear(p geom.Point) *Partition { return l.Root.routeDownLinear(p) }
