package layout

import (
	"fmt"

	"paw/internal/geom"
)

// Subtree patching: the drift re-partitioner (internal/drift) rebuilds only
// the violated region of a layout and splices the replacement subtree into a
// fresh sealed layout. Partition IDs stay dense (Seal renumbers the leaves in
// pre-order — every cost, routing and placement path indexes l.Parts[id]
// directly), so the patch reports how the old IDs map onto the new ones and
// the migration layer translates: unchanged partitions are renamed, the
// replaced region's partitions are removed, and the replacement's partitions
// are added.
//
// Because both the old and the new layout enumerate the untouched leaves in
// the same pre-order, the Renamed mapping is strictly increasing — a sorted
// old-ID list stays sorted after translation, which the master's per-partition
// cache sweep relies on.

// Diff maps one sealed layout's partitions onto its patched successor's.
type Diff struct {
	// Renamed maps the ID of every partition that survived the patch
	// unchanged (same descriptor, same rows) to its ID in the new layout.
	Renamed map[ID]ID
	// Added lists the new layout's partitions that did not exist before
	// (the replacement subtree's leaves), ascending.
	Added []ID
	// Removed lists the old layout's partitions that no longer exist (the
	// replaced subtree's leaves), ascending.
	Removed []ID
}

// PatchSubtree returns a new sealed layout equal to l with the subtree rooted
// at target replaced by repl, plus the ID diff between the two layouts. The
// inputs are not mutated: every node and partition outside the replaced
// region is cloned, so the old layout keeps serving while the new one is
// migrated in. repl is owned by the new layout after the call.
//
// target must be a node of l's tree (matched by identity), and repl must
// cover exactly the same region (equal descriptor MBRs) so the patched tree
// still tiles the domain. repl's leaves must carry partitions with their
// FullRows already set — the patch preserves them, and TotalBytes carries
// over unchanged because the patch conserves the row population.
func PatchSubtree(l *Layout, target *Node, repl *Node) (*Layout, Diff, error) {
	if l == nil || l.Root == nil {
		return nil, Diff{}, fmt.Errorf("layout: patch of unsealed layout")
	}
	if target == nil || repl == nil {
		return nil, Diff{}, fmt.Errorf("layout: patch needs a target and a replacement")
	}
	found := false
	l.Root.Walk(func(n *Node) {
		if n == target {
			found = true
		}
	})
	if !found {
		return nil, Diff{}, fmt.Errorf("layout: patch target is not a node of this layout")
	}
	if !target.Desc.MBR().Equal(repl.Desc.MBR()) {
		return nil, Diff{}, fmt.Errorf("layout: replacement covers %v, target covers %v",
			repl.Desc.MBR(), target.Desc.MBR())
	}
	if len(repl.Leaves()) == 0 {
		return nil, Diff{}, fmt.Errorf("layout: replacement subtree has no leaves")
	}

	// oldOf maps each cloned partition back to the original it shadows, so
	// the diff can pair old and new IDs after Seal renumbers.
	oldOf := make(map[*Partition]*Partition)
	newRoot := cloneExcept(l.Root, target, repl, oldOf)

	nl := Seal(l.Method, newRoot, l.RowBytes)
	nl.TotalBytes = l.TotalBytes
	nl.Unrouted = l.Unrouted

	d := Diff{Renamed: make(map[ID]ID, len(oldOf))}
	for _, p := range nl.Parts {
		if old, ok := oldOf[p]; ok {
			d.Renamed[old.ID] = p.ID
		} else {
			d.Added = append(d.Added, p.ID)
		}
	}
	for _, leaf := range target.Leaves() {
		d.Removed = append(d.Removed, leaf.Part.ID)
	}
	return nl, d, nil
}

// cloneExcept deep-clones the tree under n, substituting repl for target.
// Cloned leaves get fresh Partition structs (Seal mutates IDs in place; the
// old layout must stay untouched) recorded in oldOf.
func cloneExcept(n, target, repl *Node, oldOf map[*Partition]*Partition) *Node {
	if n == target {
		return repl
	}
	c := &Node{Desc: n.Desc}
	if n.Part != nil {
		p := *n.Part
		p.SampleRows = n.Part.SampleRows
		p.Precise = n.Part.Precise
		c.Part = &p
		oldOf[c.Part] = n.Part
		return c
	}
	c.Children = make([]*Node, len(n.Children))
	for i, ch := range n.Children {
		c.Children[i] = cloneExcept(ch, target, repl, oldOf)
	}
	return c
}

// SubtreeFor returns the smallest rectangular-descriptor node of l whose
// region contains q — the rebuild target the drift controller hands to
// PatchSubtree. The root always qualifies (its descriptor covers the
// domain), so the result is never nil on a sealed layout; nil only when the
// layout has no tree. The descent stops before irregular descriptors:
// replacement subtrees are built over rectangular domains.
func (l *Layout) SubtreeFor(q geom.Box) *Node {
	if l == nil || l.Root == nil {
		return nil
	}
	cur := l.Root
	for {
		var next *Node
		for _, c := range cur.Children {
			if c.IsLeaf() {
				continue
			}
			if c.Desc.Kind() == KindRect && c.Desc.MBR().ContainsBox(q) {
				next = c
				break
			}
		}
		if next == nil {
			return cur
		}
		cur = next
	}
}
