package layout

import (
	"paw/internal/dataset"
	"paw/internal/geom"
	"paw/internal/rtree"
)

// Extra is a redundant partition installed by the storage tuner (§V-B): a
// rectangular copy of the records inside Box, stored in spare disk space.
// Queries fully contained in Box can be answered from the extra partition
// alone.
type Extra struct {
	Box      geom.Box
	FullRows int64
	RowBytes int64
}

// Bytes returns the extra partition's physical size.
func (e Extra) Bytes() int64 { return e.FullRows * e.RowBytes }

// Extras is the set of redundant partitions attached to a layout.
type Extras []Extra

// costRowsIndexMinWork is the pieces×queries product above which CostRows
// builds a query index instead of running the quadratic loop: below it the
// index construction costs more than it prunes.
const costRowsIndexMinWork = 4096

// CostRows is the construction-time cost model: the total number of sample
// rows a workload scans against candidate pieces. Both Algorithms 1–3 and
// the Qd-tree greedy use it with sample-row sizes (Eq. 2 with size measured
// in rows). Large instances index the queries (STR box R-tree) and probe one
// piece at a time, turning O(|P|·|Q|) into O(|P|·log|Q| + matches); the
// total is identical to the quadratic reference because every intersecting
// (piece, query) pair survives the MBR pre-filter and int64 summation is
// order-independent.
func CostRows(pieces []Piece, queries []geom.Box) int64 {
	if len(pieces)*len(queries) < costRowsIndexMinWork {
		return costRowsLinear(pieces, queries)
	}
	idx := rtree.STRBoxes(queries, 8)
	var total int64
	var cand []int
	for _, p := range pieces {
		rows := int64(p.Rows)
		cand = idx.AppendIntersecting(cand[:0], p.Desc.MBR())
		for _, qi := range cand {
			if p.Desc.Intersects(queries[qi]) {
				total += rows
			}
		}
	}
	return total
}

// costRowsLinear is the retained quadratic reference for CostRows.
func costRowsLinear(pieces []Piece, queries []geom.Box) int64 {
	var total int64
	for _, q := range queries {
		for _, p := range pieces {
			if p.Desc.Intersects(q) {
				total += int64(p.Rows)
			}
		}
	}
	return total
}

// Piece is a candidate partition during construction: a descriptor plus the
// number of sample rows it holds.
type Piece struct {
	Desc Descriptor
	Rows int
}

// QueryCost returns Cost(P, q) in bytes (Eq. 1): the total size of the
// partitions whose descriptors intersect q, after precise-descriptor pruning
// (§V-A) and the storage tuner's extra partitions (§V-B) are applied. Sealed
// layouts sum over the routing index's candidates; the result is identical
// to QueryCostLinear.
func (l *Layout) QueryCost(q geom.Box, extras Extras) int64 {
	// A query fully inside an extra partition may be answered from the
	// cheapest such copy — but only when that beats scanning the base
	// partitions, so attaching extras never makes a query more expensive.
	if best := cheapestExtra(extras, q); best >= 0 {
		if base := l.baseCost(q); base < best {
			return base
		}
		return best
	}
	return l.baseCost(q)
}

// baseCost is QueryCost without extras: the sealed index path when available,
// the linear reference otherwise.
func (l *Layout) baseCost(q geom.Box) int64 {
	if l.index == nil {
		return l.baseCostLinear(q)
	}
	bp := candPool.Get().(*[]int)
	cand := l.index.AppendIntersecting((*bp)[:0], q)
	var total int64
	for _, i := range cand {
		p := l.Parts[i]
		if p.Desc.Intersects(q) && !p.PruneWithPrecise(q) {
			total += p.Bytes()
		}
	}
	*bp = cand[:0]
	candPool.Put(bp)
	return total
}

// QueryCostLinear is the retained linear reference for QueryCost: a full
// scan over every partition descriptor. Differential tests and the routing
// benchmark compare against it.
func (l *Layout) QueryCostLinear(q geom.Box, extras Extras) int64 {
	base := l.baseCostLinear(q)
	if best := cheapestExtra(extras, q); best >= 0 && best < base {
		return best
	}
	return base
}

// cheapestExtra returns the size of the cheapest extra partition fully
// containing q, or -1 when none does.
func cheapestExtra(extras Extras, q geom.Box) int64 {
	best := int64(-1)
	for _, e := range extras {
		if e.Box.ContainsBox(q) {
			if b := e.Bytes(); best < 0 || b < best {
				best = b
			}
		}
	}
	return best
}

func (l *Layout) baseCostLinear(q geom.Box) int64 {
	var total int64
	for _, p := range l.Parts {
		if !p.Desc.Intersects(q) {
			continue
		}
		if p.PruneWithPrecise(q) {
			continue
		}
		total += p.Bytes()
	}
	return total
}

// WorkloadCost returns Cost(P, Q) in bytes (Eq. 2).
func (l *Layout) WorkloadCost(queries []geom.Box, extras Extras) int64 {
	var total int64
	for _, q := range queries {
		total += l.QueryCost(q, extras)
	}
	return total
}

// AvgCost returns the average per-query cost in bytes.
func (l *Layout) AvgCost(queries []geom.Box, extras Extras) float64 {
	if len(queries) == 0 {
		return 0
	}
	return float64(l.WorkloadCost(queries, extras)) / float64(len(queries))
}

// ScanRatio returns the paper's headline metric: the average per-query I/O
// cost as a fraction of the dataset size (reported as "% of dataset").
func (l *Layout) ScanRatio(queries []geom.Box, extras Extras) float64 {
	if l.TotalBytes == 0 {
		return 0
	}
	return l.AvgCost(queries, extras) / float64(l.TotalBytes)
}

// LowerBoundBytes is LBCost for one query: the exact result size, i.e. the
// bytes of the records matching q. No layout can scan less.
func LowerBoundBytes(data *dataset.Dataset, q geom.Box) int64 {
	return int64(data.CountInBox(q, nil)) * data.RowBytes()
}

// LowerBoundRatio returns the average LBCost over a workload as a fraction
// of the dataset size.
func LowerBoundRatio(data *dataset.Dataset, queries []geom.Box) float64 {
	if len(queries) == 0 || data.NumRows() == 0 {
		return 0
	}
	var total int64
	for _, q := range queries {
		total += LowerBoundBytes(data, q)
	}
	return float64(total) / float64(len(queries)) / float64(data.TotalBytes())
}

// PartitionsFor returns the IDs of the partitions a query must scan, in ID
// order — the list the master sends to the storage layer (Fig. 4). Sealed
// layouts answer from the routing index; the result is identical to
// PartitionsForLinear. Use AppendPartitionsFor to reuse a buffer across
// queries.
func (l *Layout) PartitionsFor(q geom.Box) []ID {
	return l.AppendPartitionsFor(nil, q)
}

// PartitionsForLinear is the retained linear reference for PartitionsFor: a
// full scan over every partition descriptor. Differential tests and the
// routing benchmark compare against it.
func (l *Layout) PartitionsForLinear(q geom.Box) []ID {
	return l.appendPartitionsForLinear(nil, q)
}
