package placement

import (
	"reflect"
	"testing"

	"paw/internal/core"
	"paw/internal/dataset"
	"paw/internal/geom"
	"paw/internal/layout"
	"paw/internal/workload"
)

func buildLayout(t *testing.T) (*layout.Layout, []geom.Box) {
	t.Helper()
	data := dataset.TPCHLike(12000, 5)
	dom := data.Domain()
	hist := workload.Uniform(dom, workload.Defaults(20, 6))
	rows := make([]int, data.NumRows())
	for i := range rows {
		rows[i] = i
	}
	l := core.Build(data, rows, dom, hist, core.Params{MinRows: 10})
	l.Route(data)
	return l, hist.Boxes()
}

func totalBytes(l *layout.Layout) int64 {
	var t int64
	for _, p := range l.Parts {
		t += p.Bytes()
	}
	return t
}

func TestReplicatePreservesPrimaries(t *testing.T) {
	l, queries := buildLayout(t)
	const workers = 4
	primary := Optimize(l, queries, workers)
	rep := Replicate(l, queries, workers, primary, totalBytes(l))
	if err := rep.Validate(l, workers); err != nil {
		t.Fatal(err)
	}
	for _, p := range l.Parts {
		if rep[p.ID][0] != primary[p.ID] {
			t.Fatalf("partition %d: primary moved from %d to %d", p.ID, primary[p.ID], rep[p.ID][0])
		}
	}
	if got := rep.Primary(); !reflect.DeepEqual(got, primary) {
		t.Fatal("Primary() projection must reproduce the input assignment")
	}
}

func TestReplicateRespectsBudget(t *testing.T) {
	l, queries := buildLayout(t)
	const workers = 4
	primary := RoundRobin(l, workers)
	for _, budget := range []int64{0, totalBytes(l) / 10, totalBytes(l), 3 * totalBytes(l)} {
		rep := Replicate(l, queries, workers, primary, budget)
		if err := rep.Validate(l, workers); err != nil {
			t.Fatalf("budget %d: %v", budget, err)
		}
		if got := rep.ReplicaBytes(l); got > budget {
			t.Fatalf("budget %d: replicas occupy %d bytes", budget, got)
		}
		if budget == 0 && rep.ReplicaBytes(l) != 0 {
			t.Fatal("zero budget must produce no copies")
		}
	}
	// A generous budget must actually buy copies for a workload that touches
	// partitions.
	rep := Replicate(l, queries, workers, primary, 3*totalBytes(l))
	if rep.ReplicaBytes(l) == 0 {
		t.Fatal("unlimited budget bought no replicas for a touched workload")
	}
	// No replica set exceeds the fleet, and no set repeats a worker
	// (Validate covers this, but assert the cap explicitly).
	for id, ws := range rep {
		if len(ws) > workers {
			t.Fatalf("partition %d has %d copies for %d workers", id, len(ws), workers)
		}
	}
}

func TestReplicateDeterministic(t *testing.T) {
	l, queries := buildLayout(t)
	const workers = 3
	primary := Optimize(l, queries, workers)
	budget := totalBytes(l) / 2
	a := Replicate(l, queries, workers, primary, budget)
	b := Replicate(l, queries, workers, primary, budget)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("Replicate must be deterministic for fixed inputs")
	}
}

func TestReplicatePrefersHotPartitions(t *testing.T) {
	l, queries := buildLayout(t)
	const workers = 4
	primary := RoundRobin(l, workers)
	// Small budget: whatever it buys must go to partitions the workload
	// touches, never to untouched ones.
	touched := make(map[layout.ID]bool)
	for _, ids := range l.PartitionsForBatch(queries, 0) {
		for _, id := range ids {
			touched[id] = true
		}
	}
	rep := Replicate(l, queries, workers, primary, totalBytes(l)/4)
	for _, p := range l.Parts {
		if len(rep[p.ID]) > 1 && !touched[p.ID] {
			t.Fatalf("partition %d is untouched by the workload but got a replica", p.ID)
		}
	}
}

func TestAssignmentReplicated(t *testing.T) {
	l, _ := buildLayout(t)
	a := RoundRobin(l, 3)
	rep := a.Replicated()
	if err := rep.Validate(l, 3); err != nil {
		t.Fatal(err)
	}
	for id, w := range a {
		if len(rep[id]) != 1 || rep[id][0] != w {
			t.Fatalf("partition %d: lifted set %v, want [%d]", id, rep[id], w)
		}
	}
}

func TestValidateRejectsBadSets(t *testing.T) {
	l, _ := buildLayout(t)
	rep := RoundRobin(l, 2).Replicated()
	cases := map[string]func(Replicated){
		"missing":   func(r Replicated) { delete(r, l.Parts[0].ID) },
		"empty":     func(r Replicated) { r[l.Parts[0].ID] = nil },
		"negative":  func(r Replicated) { r[l.Parts[0].ID] = []int{-1} },
		"overflow":  func(r Replicated) { r[l.Parts[0].ID] = []int{2} },
		"duplicate": func(r Replicated) { r[l.Parts[0].ID] = []int{0, 0} },
	}
	for name, corrupt := range cases {
		bad := make(Replicated, len(rep))
		for id, ws := range rep {
			bad[id] = append([]int(nil), ws...)
		}
		corrupt(bad)
		if err := bad.Validate(l, 2); err == nil {
			t.Errorf("%s: corruption passed Validate", name)
		}
	}
}
