// Package placement assigns partitions to cluster workers, addressing the
// paper's second future-work direction ("how to take the storage layer's
// data placement and network latency issues into one cost model", §VII).
//
// A query's end-to-end time on the simulated cluster is the slowest worker's
// share of its partitions (cluster package). Two partitions a query co-reads
// should therefore live on different workers. Optimize orders partitions by
// workload-weighted bytes and greedily places each on the worker that
// minimises the summed per-query makespan Σ_q max_w bytes_w(q).
package placement

import (
	"sort"

	"paw/internal/geom"
	"paw/internal/layout"
)

// Assignment maps every partition to a worker index in [0, workers).
type Assignment map[layout.ID]int

// RoundRobin is the cluster package's default strategy, reproduced here so
// callers can compare.
func RoundRobin(l *layout.Layout, workers int) Assignment {
	if workers < 1 {
		workers = 1
	}
	out := make(Assignment, len(l.Parts))
	for i, p := range l.Parts {
		out[p.ID] = i % workers
	}
	return out
}

// Optimize computes a workload-aware assignment minimising (greedily) the
// summed per-query makespan. queries is the expected workload — typically
// the worst-case workload Q*F the layout was built for.
func Optimize(l *layout.Layout, queries []geom.Box, workers int) Assignment {
	if workers < 1 {
		workers = 1
	}
	// accessed[p] lists the query indices reading partition p. The whole
	// workload is routed in one indexed batch (all cores): per-query results
	// are deterministic, so the assignment is too.
	accessed := make(map[layout.ID][]int, len(l.Parts))
	for qi, ids := range l.PartitionsForBatch(queries, 0) {
		for _, id := range ids {
			accessed[id] = append(accessed[id], qi)
		}
	}
	// Hot partitions first: total bytes served to the workload.
	order := make([]*layout.Partition, len(l.Parts))
	copy(order, l.Parts)
	weight := func(p *layout.Partition) int64 {
		return p.Bytes() * int64(len(accessed[p.ID]))
	}
	sort.SliceStable(order, func(i, j int) bool { return weight(order[i]) > weight(order[j]) })

	// perQuery[qi][w] accumulates the bytes of query qi's partitions placed
	// on worker w so far.
	perQuery := make([][]int64, len(queries))
	for i := range perQuery {
		perQuery[i] = make([]int64, workers)
	}
	// load[w] is the total bytes on worker w, used to break ties toward
	// balanced storage.
	load := make([]int64, workers)

	out := make(Assignment, len(l.Parts))
	for _, p := range order {
		qs := accessed[p.ID]
		bestW := 0
		var bestDelta int64 = -1
		for w := 0; w < workers; w++ {
			var delta int64
			for _, qi := range qs {
				row := perQuery[qi]
				cur := maxInt64(row)
				if after := row[w] + p.Bytes(); after > cur {
					delta += after - cur
				}
			}
			if bestDelta < 0 || delta < bestDelta || (delta == bestDelta && load[w] < load[bestW]) {
				bestDelta = delta
				bestW = w
			}
		}
		out[p.ID] = bestW
		load[bestW] += p.Bytes()
		for _, qi := range qs {
			perQuery[qi][bestW] += p.Bytes()
		}
	}
	return out
}

// Makespan evaluates an assignment: the summed per-query makespan in bytes
// (lower is better; it is the byte-weighted part of the cluster's
// slowest-worker time).
func Makespan(l *layout.Layout, queries []geom.Box, workers int, a Assignment) int64 {
	var total int64
	row := make([]int64, workers)
	var ids []layout.ID
	for _, q := range queries {
		for i := range row {
			row[i] = 0
		}
		ids = l.AppendPartitionsFor(ids[:0], q)
		for _, id := range ids {
			row[a[id]] += l.Parts[id].Bytes()
		}
		total += maxInt64(row)
	}
	return total
}

func maxInt64(a []int64) int64 {
	m := int64(0)
	for _, v := range a {
		if v > m {
			m = v
		}
	}
	return m
}
