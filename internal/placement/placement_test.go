package placement

import (
	"testing"

	"paw/internal/blockstore"
	"paw/internal/cluster"
	"paw/internal/dataset"
	"paw/internal/geom"
	"paw/internal/kdtree"
	"paw/internal/layout"
	"paw/internal/workload"
)

func allRows(n int) []int {
	rows := make([]int, n)
	for i := range rows {
		rows[i] = i
	}
	return rows
}

func setup(t *testing.T) (*layout.Layout, *dataset.Dataset, []geom.Box) {
	t.Helper()
	data := dataset.Uniform(8000, 2, 1)
	l := kdtree.Build(data, allRows(8000), data.Domain(), kdtree.Params{MinRows: 120})
	l.Route(data)
	w := workload.Uniform(data.Domain(), workload.Defaults(40, 2))
	return l, data, w.Boxes()
}

func TestRoundRobinCoversAllPartitions(t *testing.T) {
	l, _, _ := setup(t)
	a := RoundRobin(l, 4)
	if len(a) != l.NumPartitions() {
		t.Fatalf("assignment covers %d of %d partitions", len(a), l.NumPartitions())
	}
	counts := make([]int, 4)
	for _, w := range a {
		if w < 0 || w >= 4 {
			t.Fatalf("worker %d out of range", w)
		}
		counts[w]++
	}
	for w, c := range counts {
		if c == 0 {
			t.Errorf("worker %d received no partitions", w)
		}
	}
}

func TestOptimizeValidAssignment(t *testing.T) {
	l, _, qs := setup(t)
	a := Optimize(l, qs, 4)
	if len(a) != l.NumPartitions() {
		t.Fatalf("assignment covers %d of %d partitions", len(a), l.NumPartitions())
	}
	for id, w := range a {
		if w < 0 || w >= 4 {
			t.Fatalf("partition %d on invalid worker %d", id, w)
		}
	}
}

// TestOptimizeBeatsRoundRobin is the point of the package: the greedy
// co-access-aware placement must not be worse than round-robin on the
// makespan objective, and usually strictly better.
func TestOptimizeBeatsRoundRobin(t *testing.T) {
	l, _, qs := setup(t)
	for _, workers := range []int{2, 4, 8} {
		rr := Makespan(l, qs, workers, RoundRobin(l, workers))
		opt := Makespan(l, qs, workers, Optimize(l, qs, workers))
		if opt > rr {
			t.Errorf("workers=%d: optimized makespan %d worse than round-robin %d", workers, opt, rr)
		}
		t.Logf("workers=%d: round-robin %d, optimized %d (%.1f%% better)",
			workers, rr, opt, 100*(1-float64(opt)/float64(rr)))
	}
}

func TestOptimizeSingleWorker(t *testing.T) {
	l, _, qs := setup(t)
	a := Optimize(l, qs, 1)
	for _, w := range a {
		if w != 0 {
			t.Fatal("single worker must receive everything")
		}
	}
	// workers < 1 is normalised.
	a = Optimize(l, qs, 0)
	if len(a) != l.NumPartitions() {
		t.Fatal("assignment incomplete")
	}
}

// TestClusterIntegration: feeding the optimized placement into the cluster
// simulator must not slow queries down versus round-robin.
func TestClusterIntegration(t *testing.T) {
	l, data, qs := setup(t)
	store := blockstore.Materialize(l, data, blockstore.Config{GroupRows: 128})
	cfg := cluster.Defaults()
	cfg.CacheBytes = 0 // isolate placement effects from caching

	rr := cluster.New(cfg, store, l)
	opt := cluster.NewWithPlacement(cfg, store, Optimize(l, qs, cfg.Workers))
	route := func(q geom.Box) []layout.ID { return l.PartitionsFor(q) }
	avgRR, err := rr.RunWorkload(qs, route)
	if err != nil {
		t.Fatal(err)
	}
	avgOpt, err := opt.RunWorkload(qs, route)
	if err != nil {
		t.Fatal(err)
	}
	if avgOpt.Elapsed > avgRR.Elapsed*11/10 {
		t.Errorf("optimized placement slower: %v vs %v", avgOpt.Elapsed, avgRR.Elapsed)
	}
	t.Logf("avg end-to-end: round-robin %v, optimized %v", avgRR.Elapsed, avgOpt.Elapsed)
}

func TestMakespanZeroQueries(t *testing.T) {
	l, _, _ := setup(t)
	if m := Makespan(l, nil, 4, RoundRobin(l, 4)); m != 0 {
		t.Errorf("makespan of no queries = %d", m)
	}
}
