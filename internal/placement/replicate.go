package placement

import (
	"fmt"
	"sort"

	"paw/internal/geom"
	"paw/internal/layout"
)

// Replicated maps every partition to its replica set: the primary worker
// first, then failover replicas on distinct workers. It is the
// failure-aware extension of Assignment — the master scans a partition on
// its primary and fails over down the list when the primary is unreachable
// or its breaker is open.
type Replicated map[layout.ID][]int

// Primary projects the replica sets back to a plain Assignment (the first
// worker of each set).
func (r Replicated) Primary() Assignment {
	out := make(Assignment, len(r))
	for id, ws := range r {
		if len(ws) > 0 {
			out[id] = ws[0]
		}
	}
	return out
}

// ReplicaBytes returns the spare storage the non-primary copies occupy.
func (r Replicated) ReplicaBytes(l *layout.Layout) int64 {
	var total int64
	for _, p := range l.Parts {
		if n := len(r[p.ID]); n > 1 {
			total += p.Bytes() * int64(n-1)
		}
	}
	return total
}

// Validate checks the structural contract: every layout partition has at
// least one copy, worker indices are in [0, workers), and no partition lists
// the same worker twice.
func (r Replicated) Validate(l *layout.Layout, workers int) error {
	for _, p := range l.Parts {
		ws := r[p.ID]
		if len(ws) == 0 {
			return fmt.Errorf("placement: partition %d has no replica set", p.ID)
		}
		seen := make(map[int]bool, len(ws))
		for _, w := range ws {
			if w < 0 || w >= workers {
				return fmt.Errorf("placement: partition %d placed on invalid worker %d", p.ID, w)
			}
			if seen[w] {
				return fmt.Errorf("placement: partition %d lists worker %d twice", p.ID, w)
			}
			seen[w] = true
		}
	}
	return nil
}

// Replicated lifts a single-copy assignment to replica sets of size one.
func (a Assignment) Replicated() Replicated {
	out := make(Replicated, len(a))
	for id, w := range a {
		out[id] = []int{w}
	}
	return out
}

// Replicate spends budgetBytes of spare storage on failover copies of the
// hottest partitions, the same greedy shape as the storage tuner (§V-B) but
// applied to whole partitions for availability rather than query regions for
// latency: candidates are (partition, extra copy) pairs, priority is the
// partition's workload-weighted bytes divided by the copies it already has
// (the second copy of a hot partition beats the first copy of a cold one),
// and each copy lands on the least-loaded worker not already hosting the
// partition. The result is deterministic for fixed inputs.
//
// queries is the expected workload (typically the worst-case workload Q*F);
// primary is the existing single-copy assignment (e.g. Optimize's output),
// preserved as the first entry of every replica set.
func Replicate(l *layout.Layout, queries []geom.Box, workers int, primary Assignment, budgetBytes int64) Replicated {
	if workers < 1 {
		workers = 1
	}
	out := make(Replicated, len(l.Parts))
	load := make([]int64, workers)
	for _, p := range l.Parts {
		w := primary[p.ID]
		if w < 0 || w >= workers {
			w = 0
		}
		out[p.ID] = []int{w}
		load[w] += p.Bytes()
	}
	if budgetBytes <= 0 || workers < 2 {
		return out
	}
	// touches[p] counts the workload queries reading partition p — the same
	// heat signal Optimize orders by.
	touches := make(map[layout.ID]int, len(l.Parts))
	for _, ids := range l.PartitionsForBatch(queries, 0) {
		for _, id := range ids {
			touches[id]++
		}
	}
	// Hottest-first order; ties broken by ID for determinism.
	order := make([]*layout.Partition, len(l.Parts))
	copy(order, l.Parts)
	weight := func(p *layout.Partition) int64 {
		return p.Bytes() * int64(touches[p.ID])
	}
	sort.SliceStable(order, func(i, j int) bool {
		wi, wj := weight(order[i]), weight(order[j])
		if wi != wj {
			return wi > wj
		}
		return order[i].ID < order[j].ID
	})
	remaining := budgetBytes
	for {
		// Pick the candidate copy with the best priority that fits.
		var best *layout.Partition
		var bestPrio float64
		for _, p := range order {
			if p.Bytes() <= 0 || p.Bytes() > remaining || len(out[p.ID]) >= workers {
				continue
			}
			if w := weight(p); w > 0 {
				prio := float64(w) / float64(len(out[p.ID]))
				if best == nil || prio > bestPrio {
					best, bestPrio = p, prio
				}
			}
		}
		if best == nil {
			return out
		}
		// Least-loaded worker not already hosting the partition.
		hosting := make(map[int]bool, len(out[best.ID]))
		for _, w := range out[best.ID] {
			hosting[w] = true
		}
		bestW := -1
		for w := 0; w < workers; w++ {
			if hosting[w] {
				continue
			}
			if bestW < 0 || load[w] < load[bestW] {
				bestW = w
			}
		}
		if bestW < 0 {
			return out
		}
		out[best.ID] = append(out[best.ID], bestW)
		load[bestW] += best.Bytes()
		remaining -= best.Bytes()
	}
}
