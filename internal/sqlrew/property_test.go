package sqlrew

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"paw/internal/geom"
)

// randExpr generates a random predicate tree, returning both its SQL text
// and a direct evaluator — the oracle the parser+rewriter must agree with.
func randExpr(rng *rand.Rand, cols []string, depth int) (string, func([]float64) bool) {
	if depth <= 0 || rng.Float64() < 0.4 {
		// Leaf: a comparison on a random column with a value in [0, 10].
		c := rng.Intn(len(cols))
		v := float64(rng.Intn(101)) / 10
		switch rng.Intn(6) {
		case 0:
			return fmt.Sprintf("%s >= %g", cols[c], v), func(x []float64) bool { return x[c] >= v }
		case 1:
			return fmt.Sprintf("%s <= %g", cols[c], v), func(x []float64) bool { return x[c] <= v }
		case 2:
			return fmt.Sprintf("%s > %g", cols[c], v), func(x []float64) bool { return x[c] > v }
		case 3:
			return fmt.Sprintf("%s < %g", cols[c], v), func(x []float64) bool { return x[c] < v }
		case 4:
			return fmt.Sprintf("%s = %g", cols[c], v), func(x []float64) bool { return x[c] == v }
		default:
			lo := float64(rng.Intn(101)) / 10
			hi := lo + float64(rng.Intn(41))/10
			return fmt.Sprintf("%s BETWEEN %g AND %g", cols[c], lo, hi),
				func(x []float64) bool { return x[c] >= lo && x[c] <= hi }
		}
	}
	switch rng.Intn(3) {
	case 0: // AND
		ls, lf := randExpr(rng, cols, depth-1)
		rs, rf := randExpr(rng, cols, depth-1)
		return fmt.Sprintf("(%s AND %s)", ls, rs), func(x []float64) bool { return lf(x) && rf(x) }
	case 1: // OR
		ls, lf := randExpr(rng, cols, depth-1)
		rs, rf := randExpr(rng, cols, depth-1)
		return fmt.Sprintf("(%s OR %s)", ls, rs), func(x []float64) bool { return lf(x) || rf(x) }
	default: // NOT
		s, f := randExpr(rng, cols, depth-1)
		return fmt.Sprintf("NOT (%s)", s), func(x []float64) bool { return !f(x) }
	}
}

// TestRandomClausesSemantics: for hundreds of random predicate trees, the
// rewritten disjoint range set must classify random points exactly like
// direct evaluation, and the ranges must be pairwise interior-disjoint.
func TestRandomClausesSemantics(t *testing.T) {
	cols := []string{"a", "b", "c"}
	r, err := New(cols)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(99))
	for iter := 0; iter < 300; iter++ {
		sql, eval := randExpr(rng, cols, 3)
		boxes, err := r.Rewrite(sql)
		if err != nil {
			t.Fatalf("clause %q failed to parse: %v", sql, err)
		}
		for i := range boxes {
			for j := i + 1; j < len(boxes); j++ {
				if inter, ok := boxes[i].Intersection(boxes[j]); ok && inter.Volume() > 0 {
					t.Fatalf("clause %q: boxes %d and %d overlap", sql, i, j)
				}
			}
		}
		for k := 0; k < 60; k++ {
			x := []float64{
				float64(rng.Intn(101)) / 10, // grid points hit the literals
				float64(rng.Intn(101)) / 10,
				float64(rng.Intn(101)) / 10,
			}
			want := eval(x)
			got := false
			for _, b := range boxes {
				if b.Contains(geom.Point(x)) {
					got = true
					break
				}
			}
			if got != want {
				t.Fatalf("clause %q at %v: rewrite says %v, evaluator says %v\nboxes: %v",
					sql, x, got, want, boxes)
			}
		}
	}
}

// TestDeepNesting exercises the parser's recursion on a mechanically built,
// deeply parenthesised clause.
func TestDeepNesting(t *testing.T) {
	r, err := New([]string{"x"})
	if err != nil {
		t.Fatal(err)
	}
	clause := "x >= 5"
	for i := 0; i < 200; i++ {
		clause = "(" + clause + ")"
	}
	boxes, err := r.Rewrite(clause)
	if err != nil {
		t.Fatal(err)
	}
	if len(boxes) != 1 || boxes[0].Lo[0] != 5 {
		t.Errorf("deeply nested clause rewrote to %v", boxes)
	}
}

// TestManyDisjuncts: a long OR chain produces many disjoint boxes whose
// union is still correct.
func TestManyDisjuncts(t *testing.T) {
	r, err := New([]string{"x"})
	if err != nil {
		t.Fatal(err)
	}
	var parts []string
	for i := 0; i < 50; i++ {
		parts = append(parts, fmt.Sprintf("(x >= %d AND x <= %g)", 2*i, float64(2*i)+0.5))
	}
	boxes, err := r.Rewrite(strings.Join(parts, " OR "))
	if err != nil {
		t.Fatal(err)
	}
	if len(boxes) != 50 {
		t.Fatalf("got %d boxes, want 50 (inputs are already disjoint)", len(boxes))
	}
	for i := 0; i < 100; i++ {
		in := false
		for _, b := range boxes {
			if b.Contains(geom.Point{float64(i)}) {
				in = true
				break
			}
		}
		if in != (i%2 == 0) {
			t.Fatalf("x=%d classified %v", i, in)
		}
	}
}
