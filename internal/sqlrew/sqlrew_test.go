package sqlrew

import (
	"math"
	"math/rand"
	"testing"

	"paw/internal/geom"
)

func mustNew(t *testing.T, cols ...string) *Rewriter {
	t.Helper()
	r, err := New(cols)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestLexerBasics(t *testing.T) {
	toks, err := lex("A >= 10 AND b_2 <= 5.5e2 OR (C < -3)")
	if err != nil {
		t.Fatal(err)
	}
	kinds := []tokenKind{tokIdent, tokOp, tokNumber, tokAnd, tokIdent, tokOp, tokNumber,
		tokOr, tokLParen, tokIdent, tokOp, tokNumber, tokRParen, tokEOF}
	if len(toks) != len(kinds) {
		t.Fatalf("got %d tokens, want %d", len(toks), len(kinds))
	}
	for i, k := range kinds {
		if toks[i].kind != k {
			t.Errorf("token %d kind = %d, want %d (%s)", i, toks[i].kind, k, toks[i])
		}
	}
	if toks[6].num != 550 {
		t.Errorf("5.5e2 parsed as %v", toks[6].num)
	}
	if toks[11].num != -3 {
		t.Errorf("-3 parsed as %v", toks[11].num)
	}
}

func TestLexerErrors(t *testing.T) {
	if _, err := lex("A >= #"); err == nil {
		t.Error("bad character must error")
	}
	if _, err := lex("A >= 1.2.3"); err == nil {
		t.Error("bad number must error")
	}
}

func TestRewriteSimpleAnd(t *testing.T) {
	// The paper's example: WHERE A>=10 AND B<=50 → [10,∞)×(−∞,50].
	r := mustNew(t, "A", "B")
	boxes, err := r.Rewrite("A >= 10 AND B <= 50")
	if err != nil {
		t.Fatal(err)
	}
	if len(boxes) != 1 {
		t.Fatalf("got %d boxes", len(boxes))
	}
	b := boxes[0]
	if b.Lo[0] != 10 || !math.IsInf(b.Hi[0], 1) {
		t.Errorf("dim A = [%v, %v]", b.Lo[0], b.Hi[0])
	}
	if !math.IsInf(b.Lo[1], -1) || b.Hi[1] != 50 {
		t.Errorf("dim B = [%v, %v]", b.Lo[1], b.Hi[1])
	}
}

func TestRewriteOrDisjoint(t *testing.T) {
	// The paper's OR example: A>=10 OR B<=50 decomposes into the disjoint
	// [10,∞)×(−∞,∞) and (−∞,10)×(−∞,50].
	r := mustNew(t, "A", "B")
	boxes, err := r.Rewrite("A >= 10 OR B <= 50")
	if err != nil {
		t.Fatal(err)
	}
	if len(boxes) != 2 {
		t.Fatalf("got %d boxes, want 2", len(boxes))
	}
	// Disjointness (no interior overlap).
	for i := range boxes {
		for j := i + 1; j < len(boxes); j++ {
			if inter, ok := boxes[i].Intersection(boxes[j]); ok && inter.Volume() > 0 {
				t.Errorf("boxes %d and %d overlap", i, j)
			}
		}
	}
	// Semantic equivalence on sample points.
	check := func(a, b float64, want bool) {
		p := geom.Point{a, b}
		got := false
		for _, bx := range boxes {
			if bx.Contains(p) {
				got = true
				break
			}
		}
		if got != want {
			t.Errorf("point (%v,%v): in-union=%v, want %v", a, b, got, want)
		}
	}
	check(10, 100, true) // A>=10
	check(5, 50, true)   // B<=50
	check(5, 51, false)  // neither
	check(15, 20, true)  // both
}

func TestRewriteBetween(t *testing.T) {
	r := mustNew(t, "x")
	boxes, err := r.Rewrite("x BETWEEN 3 AND 7")
	if err != nil {
		t.Fatal(err)
	}
	if len(boxes) != 1 || boxes[0].Lo[0] != 3 || boxes[0].Hi[0] != 7 {
		t.Errorf("BETWEEN = %v", boxes)
	}
}

func TestRewriteStrictOps(t *testing.T) {
	r := mustNew(t, "x")
	boxes, err := r.Rewrite("x > 3 AND x < 7")
	if err != nil {
		t.Fatal(err)
	}
	b := boxes[0]
	if !(b.Lo[0] > 3) || !(b.Hi[0] < 7) {
		t.Errorf("strict bounds not honoured: %v", b)
	}
	if b.Contains(geom.Point{3}) || b.Contains(geom.Point{7}) {
		t.Error("strict endpoints must be excluded")
	}
	if !b.Contains(geom.Point{3.0000001}) {
		t.Error("interior must be included")
	}
}

func TestRewriteEquality(t *testing.T) {
	r := mustNew(t, "x", "y")
	boxes, err := r.Rewrite("x = 5")
	if err != nil {
		t.Fatal(err)
	}
	if boxes[0].Lo[0] != 5 || boxes[0].Hi[0] != 5 {
		t.Errorf("equality = %v", boxes[0])
	}
}

func TestRewriteNotEqual(t *testing.T) {
	r := mustNew(t, "x")
	boxes, err := r.Rewrite("x <> 5")
	if err != nil {
		t.Fatal(err)
	}
	if len(boxes) != 2 {
		t.Fatalf("<> must produce 2 disjoint boxes, got %d", len(boxes))
	}
	for _, b := range boxes {
		if b.Contains(geom.Point{5}) {
			t.Error("<> boxes must exclude the value")
		}
	}
}

func TestRewriteNot(t *testing.T) {
	r := mustNew(t, "x", "y")
	boxes, err := r.Rewrite("NOT (x >= 10 AND y >= 10)")
	if err != nil {
		t.Fatal(err)
	}
	// De Morgan: x<10 OR y<10, as 2 disjoint boxes.
	in := func(a, b float64) bool {
		for _, bx := range boxes {
			if bx.Contains(geom.Point{a, b}) {
				return true
			}
		}
		return false
	}
	if !in(5, 100) || !in(100, 5) || in(10, 10) || in(20, 20) {
		t.Errorf("NOT rewrite wrong: %v", boxes)
	}
}

func TestRewriteFlippedOperands(t *testing.T) {
	r := mustNew(t, "x")
	boxes, err := r.Rewrite("10 <= x")
	if err != nil {
		t.Fatal(err)
	}
	if boxes[0].Lo[0] != 10 {
		t.Errorf("flipped operand: %v", boxes[0])
	}
	boxes, err = r.Rewrite("10 > x")
	if err != nil {
		t.Fatal(err)
	}
	if !(boxes[0].Hi[0] < 10) {
		t.Errorf("flipped strict operand: %v", boxes[0])
	}
}

func TestRewriteUnsatisfiable(t *testing.T) {
	r := mustNew(t, "x")
	boxes, err := r.Rewrite("x > 10 AND x < 5")
	if err != nil {
		t.Fatal(err)
	}
	if len(boxes) != 0 {
		t.Errorf("unsatisfiable clause produced %v", boxes)
	}
}

func TestRewriteErrors(t *testing.T) {
	r := mustNew(t, "x")
	for _, bad := range []string{
		"z >= 5",        // unknown column
		"x >=",          // missing value
		"x 5",           // missing operator
		"(x >= 5",       // unbalanced paren
		"x >= 5 AND",    // dangling AND
		"x BETWEEN 3 7", // missing AND
		"AND x >= 5",    // leading AND
	} {
		if _, err := r.Rewrite(bad); err == nil {
			t.Errorf("clause %q must error", bad)
		}
	}
	if _, err := New(nil); err == nil {
		t.Error("empty schema must error")
	}
	if _, err := New([]string{"a", "A"}); err == nil {
		t.Error("duplicate (case-insensitive) columns must error")
	}
}

func TestRewriteEmptyAndSQL(t *testing.T) {
	r := mustNew(t, "x", "y")
	boxes, err := r.Rewrite("   ")
	if err != nil || len(boxes) != 1 {
		t.Fatalf("empty clause: %v, %v", boxes, err)
	}
	if !boxes[0].Contains(geom.Point{1e18, -1e18}) {
		t.Error("empty clause must scan everything")
	}
	boxes, err = r.RewriteSQL("SELECT * FROM t WHERE x >= 4")
	if err != nil || len(boxes) != 1 || boxes[0].Lo[0] != 4 {
		t.Fatalf("RewriteSQL: %v, %v", boxes, err)
	}
	boxes, err = r.RewriteSQL("SELECT * FROM t")
	if err != nil || len(boxes) != 1 {
		t.Fatalf("RewriteSQL without WHERE: %v, %v", boxes, err)
	}
}

func TestCaseInsensitivity(t *testing.T) {
	r := mustNew(t, "Price")
	boxes, err := r.Rewrite("pRiCe between 1 and 2 and PRICE >= 1.5")
	if err != nil {
		t.Fatal(err)
	}
	if len(boxes) != 1 || boxes[0].Lo[0] != 1.5 || boxes[0].Hi[0] != 2 {
		t.Errorf("case-insensitive rewrite: %v", boxes)
	}
}

// TestDisjointUnionEquivalence: for random DNF clauses, the disjoint boxes'
// union must classify random points exactly like direct predicate
// evaluation.
func TestDisjointUnionEquivalence(t *testing.T) {
	r := mustNew(t, "a", "b")
	rng := rand.New(rand.NewSource(9))
	clauses := []string{
		"a >= 3 OR b <= 7",
		"a <= 4 OR a >= 6 OR b = 5",
		"(a >= 2 AND b >= 2) OR (a <= 8 AND b <= 1)",
		"NOT (a > 5) OR b > 9",
		"a <> 5 AND b >= 2",
	}
	evals := []func(a, b float64) bool{
		func(a, b float64) bool { return a >= 3 || b <= 7 },
		func(a, b float64) bool { return a <= 4 || a >= 6 || b == 5 },
		func(a, b float64) bool { return (a >= 2 && b >= 2) || (a <= 8 && b <= 1) },
		func(a, b float64) bool { return !(a > 5) || b > 9 },
		func(a, b float64) bool { return a != 5 && b >= 2 },
	}
	for ci, clause := range clauses {
		boxes, err := r.Rewrite(clause)
		if err != nil {
			t.Fatalf("clause %q: %v", clause, err)
		}
		// Pairwise interior-disjoint.
		for i := range boxes {
			for j := i + 1; j < len(boxes); j++ {
				if inter, ok := boxes[i].Intersection(boxes[j]); ok && inter.Volume() > 0 {
					t.Errorf("clause %q: boxes %d,%d overlap", clause, i, j)
				}
			}
		}
		for k := 0; k < 500; k++ {
			a := rng.Float64() * 10
			b := rng.Float64() * 10
			if k%10 == 0 {
				a = float64(rng.Intn(11)) // exercise integer boundaries
				b = float64(rng.Intn(11))
			}
			want := evals[ci](a, b)
			got := false
			for _, bx := range boxes {
				if bx.Contains(geom.Point{a, b}) {
					got = true
					break
				}
			}
			if got != want {
				t.Fatalf("clause %q point (%v,%v): got %v, want %v", clause, a, b, got, want)
			}
		}
	}
}
