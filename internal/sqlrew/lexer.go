// Package sqlrew implements the SQL query rewriter of the PAW query
// framework (Fig. 4): WHERE clauses with unary numeric predicates are parsed
// and rewritten into one or more *disjoint* multi-dimensional range queries,
// exactly as §III-B describes (e.g. WHERE A>=10 OR B<=50 becomes
// [10,∞)×(−∞,∞) and (−∞,10)×(−∞,50]).
package sqlrew

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
)

type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokNumber
	tokOp // >= <= > < = <>
	tokLParen
	tokRParen
	tokAnd
	tokOr
	tokNot
	tokBetween
)

type token struct {
	kind tokenKind
	text string
	num  float64
	pos  int
}

func (t token) String() string {
	switch t.kind {
	case tokEOF:
		return "end of input"
	default:
		return fmt.Sprintf("%q", t.text)
	}
}

// lex tokenises a WHERE clause. Keywords are case-insensitive.
func lex(s string) ([]token, error) {
	var out []token
	i := 0
	for i < len(s) {
		c := s[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '(':
			out = append(out, token{kind: tokLParen, text: "(", pos: i})
			i++
		case c == ')':
			out = append(out, token{kind: tokRParen, text: ")", pos: i})
			i++
		case c == '>' || c == '<' || c == '=':
			op := string(c)
			if i+1 < len(s) && (s[i+1] == '=' || (c == '<' && s[i+1] == '>')) {
				op += string(s[i+1])
			}
			out = append(out, token{kind: tokOp, text: op, pos: i})
			i += len(op)
		case c == '-' || c == '.' || (c >= '0' && c <= '9'):
			j := i + 1
			for j < len(s) && (s[j] == '.' || s[j] == 'e' || s[j] == 'E' || s[j] == '-' || s[j] == '+' || (s[j] >= '0' && s[j] <= '9')) {
				// Allow '-'/'+' only directly after an exponent marker.
				if (s[j] == '-' || s[j] == '+') && !(s[j-1] == 'e' || s[j-1] == 'E') {
					break
				}
				j++
			}
			text := s[i:j]
			v, err := strconv.ParseFloat(text, 64)
			if err != nil {
				return nil, fmt.Errorf("sqlrew: bad number %q at position %d", text, i)
			}
			out = append(out, token{kind: tokNumber, text: text, num: v, pos: i})
			i = j
		case isIdentStart(rune(c)):
			j := i + 1
			for j < len(s) && isIdentPart(rune(s[j])) {
				j++
			}
			word := s[i:j]
			switch strings.ToUpper(word) {
			case "AND":
				out = append(out, token{kind: tokAnd, text: word, pos: i})
			case "OR":
				out = append(out, token{kind: tokOr, text: word, pos: i})
			case "NOT":
				out = append(out, token{kind: tokNot, text: word, pos: i})
			case "BETWEEN":
				out = append(out, token{kind: tokBetween, text: word, pos: i})
			default:
				out = append(out, token{kind: tokIdent, text: word, pos: i})
			}
			i = j
		default:
			return nil, fmt.Errorf("sqlrew: unexpected character %q at position %d", c, i)
		}
	}
	out = append(out, token{kind: tokEOF, pos: len(s)})
	return out, nil
}

func isIdentStart(r rune) bool {
	return r == '_' || unicode.IsLetter(r)
}

func isIdentPart(r rune) bool {
	return r == '_' || unicode.IsLetter(r) || unicode.IsDigit(r)
}
