package sqlrew

import "fmt"

// The AST is deliberately small: boolean structure over atomic comparisons.
type expr interface{ isExpr() }

type orExpr struct{ terms []expr }
type andExpr struct{ factors []expr }
type notExpr struct{ inner expr }

// pred is an atomic comparison col OP value, with OP one of
// >=, <=, >, <, =, <>.
type pred struct {
	col string
	op  string
	val float64
}

func (orExpr) isExpr()  {}
func (andExpr) isExpr() {}
func (notExpr) isExpr() {}
func (pred) isExpr()    {}

type parser struct {
	toks []token
	pos  int
}

func parse(s string) (expr, error) {
	toks, err := lex(s)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	e, err := p.parseOr()
	if err != nil {
		return nil, err
	}
	if p.peek().kind != tokEOF {
		return nil, fmt.Errorf("sqlrew: unexpected %s at position %d", p.peek(), p.peek().pos)
	}
	return e, nil
}

func (p *parser) peek() token { return p.toks[p.pos] }
func (p *parser) next() token { t := p.toks[p.pos]; p.pos++; return t }

func (p *parser) expect(kind tokenKind, what string) (token, error) {
	if p.peek().kind != kind {
		return token{}, fmt.Errorf("sqlrew: expected %s, found %s at position %d", what, p.peek(), p.peek().pos)
	}
	return p.next(), nil
}

func (p *parser) parseOr() (expr, error) {
	first, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	terms := []expr{first}
	for p.peek().kind == tokOr {
		p.next()
		t, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		terms = append(terms, t)
	}
	if len(terms) == 1 {
		return first, nil
	}
	return orExpr{terms: terms}, nil
}

func (p *parser) parseAnd() (expr, error) {
	first, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	factors := []expr{first}
	for p.peek().kind == tokAnd {
		p.next()
		f, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		factors = append(factors, f)
	}
	if len(factors) == 1 {
		return first, nil
	}
	return andExpr{factors: factors}, nil
}

func (p *parser) parseUnary() (expr, error) {
	switch p.peek().kind {
	case tokNot:
		p.next()
		inner, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return notExpr{inner: inner}, nil
	case tokLParen:
		p.next()
		e, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokRParen, "')'"); err != nil {
			return nil, err
		}
		return e, nil
	default:
		return p.parsePredicate()
	}
}

// parsePredicate accepts `col OP number`, `number OP col`, and
// `col BETWEEN a AND b`.
func (p *parser) parsePredicate() (expr, error) {
	switch p.peek().kind {
	case tokIdent:
		col := p.next().text
		switch p.peek().kind {
		case tokBetween:
			p.next()
			lo, err := p.expect(tokNumber, "number")
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tokAnd, "AND"); err != nil {
				return nil, err
			}
			hi, err := p.expect(tokNumber, "number")
			if err != nil {
				return nil, err
			}
			return andExpr{factors: []expr{
				pred{col: col, op: ">=", val: lo.num},
				pred{col: col, op: "<=", val: hi.num},
			}}, nil
		case tokOp:
			op := p.next().text
			v, err := p.expect(tokNumber, "number")
			if err != nil {
				return nil, err
			}
			return pred{col: col, op: op, val: v.num}, nil
		default:
			return nil, fmt.Errorf("sqlrew: expected comparison after column %q at position %d", col, p.peek().pos)
		}
	case tokNumber:
		v := p.next()
		op, err := p.expect(tokOp, "comparison operator")
		if err != nil {
			return nil, err
		}
		colTok, err := p.expect(tokIdent, "column name")
		if err != nil {
			return nil, err
		}
		return pred{col: colTok.text, op: flipOp(op.text), val: v.num}, nil
	default:
		return nil, fmt.Errorf("sqlrew: expected predicate, found %s at position %d", p.peek(), p.peek().pos)
	}
}

// flipOp mirrors an operator across its operands: 10 <= A means A >= 10.
func flipOp(op string) string {
	switch op {
	case "<=":
		return ">="
	case ">=":
		return "<="
	case "<":
		return ">"
	case ">":
		return "<"
	default: // = and <> are symmetric
		return op
	}
}

// pushNot eliminates NOT nodes by De Morgan's laws and operator negation.
func pushNot(e expr, negated bool) expr {
	switch v := e.(type) {
	case notExpr:
		return pushNot(v.inner, !negated)
	case andExpr:
		out := make([]expr, len(v.factors))
		for i, f := range v.factors {
			out[i] = pushNot(f, negated)
		}
		if negated {
			return orExpr{terms: out}
		}
		return andExpr{factors: out}
	case orExpr:
		out := make([]expr, len(v.terms))
		for i, t := range v.terms {
			out[i] = pushNot(t, negated)
		}
		if negated {
			return andExpr{factors: out}
		}
		return orExpr{terms: out}
	case pred:
		if !negated {
			return v
		}
		return negatePred(v)
	default:
		panic(fmt.Sprintf("sqlrew: unknown expr %T", e))
	}
}

func negatePred(p pred) expr {
	switch p.op {
	case ">=":
		return pred{col: p.col, op: "<", val: p.val}
	case "<=":
		return pred{col: p.col, op: ">", val: p.val}
	case ">":
		return pred{col: p.col, op: "<=", val: p.val}
	case "<":
		return pred{col: p.col, op: ">=", val: p.val}
	case "=":
		return pred{col: p.col, op: "<>", val: p.val}
	case "<>":
		return pred{col: p.col, op: "=", val: p.val}
	default:
		panic(fmt.Sprintf("sqlrew: unknown operator %q", p.op))
	}
}

// toDNF converts a NOT-free expression into a disjunction of conjunctions of
// atomic predicates. Inequality (<>) predicates are expanded into two
// disjuncts first.
func toDNF(e expr) [][]pred {
	switch v := e.(type) {
	case pred:
		if v.op == "<>" {
			return [][]pred{
				{{col: v.col, op: "<", val: v.val}},
				{{col: v.col, op: ">", val: v.val}},
			}
		}
		return [][]pred{{v}}
	case orExpr:
		var out [][]pred
		for _, t := range v.terms {
			out = append(out, toDNF(t)...)
		}
		return out
	case andExpr:
		// Cross-product of the factors' DNFs.
		out := [][]pred{{}}
		for _, f := range v.factors {
			fd := toDNF(f)
			var next [][]pred
			for _, conj := range out {
				for _, fc := range fd {
					merged := make([]pred, 0, len(conj)+len(fc))
					merged = append(merged, conj...)
					merged = append(merged, fc...)
					next = append(next, merged)
				}
			}
			out = next
		}
		return out
	default:
		panic(fmt.Sprintf("sqlrew: NOT should have been eliminated, found %T", e))
	}
}
