package sqlrew

import "testing"

// FuzzRewrite asserts the lexer/parser/rewriter never panic on arbitrary
// input and that accepted clauses always yield interiorly disjoint boxes.
func FuzzRewrite(f *testing.F) {
	seeds := []string{
		"A >= 10 AND B <= 50",
		"A >= 10 OR B <= 50",
		"x BETWEEN 3 AND 7",
		"NOT (a > 5) OR b <> 2",
		"((((a=1))))",
		"a >= 1e308 AND a <= -1e308",
		"a b c d",
		"AND OR NOT BETWEEN",
		">>><<<===",
		"a >= 5 anD a <= 6 Or b = 0.5",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	r, err := New([]string{"a", "b", "x"})
	if err != nil {
		f.Fatal(err)
	}
	f.Fuzz(func(t *testing.T, clause string) {
		boxes, err := r.Rewrite(clause)
		if err != nil {
			return // rejection is fine; panics are not
		}
		for i := range boxes {
			if boxes[i].Dims() != 3 {
				t.Fatalf("box with %d dims from %q", boxes[i].Dims(), clause)
			}
			for j := i + 1; j < len(boxes); j++ {
				if inter, ok := boxes[i].Intersection(boxes[j]); ok && inter.Volume() > 0 {
					t.Fatalf("overlapping boxes from %q", clause)
				}
			}
		}
	})
}
