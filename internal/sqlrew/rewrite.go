package sqlrew

import (
	"fmt"
	"math"
	"strings"

	"paw/internal/geom"
)

// Rewriter converts WHERE clauses over a fixed numeric schema into range
// queries (Fig. 4, step 1).
type Rewriter struct {
	cols map[string]int
	dims int
}

// New builds a rewriter for the given column names; the i-th name maps to
// query dimension i. Matching is case-insensitive.
func New(columns []string) (*Rewriter, error) {
	if len(columns) == 0 {
		return nil, fmt.Errorf("sqlrew: empty schema")
	}
	m := make(map[string]int, len(columns))
	for i, c := range columns {
		key := strings.ToLower(c)
		if _, dup := m[key]; dup {
			return nil, fmt.Errorf("sqlrew: duplicate column %q", c)
		}
		m[key] = i
	}
	return &Rewriter{cols: m, dims: len(columns)}, nil
}

// Rewrite parses the WHERE clause and returns the equivalent set of
// *disjoint* range queries: later disjuncts are geometrically subtracted
// from earlier ones, as in the paper's OR example (§III-B). Unconstrained
// dimensions are unbounded (±Inf). An empty clause means "everything" and
// yields one universe box.
func (r *Rewriter) Rewrite(where string) ([]geom.Box, error) {
	if strings.TrimSpace(where) == "" {
		return []geom.Box{geom.UniverseBox(r.dims)}, nil
	}
	ast, err := parse(where)
	if err != nil {
		return nil, err
	}
	dnf := toDNF(pushNot(ast, false))
	var raw []geom.Box
	for _, conj := range dnf {
		box, ok, err := r.conjToBox(conj)
		if err != nil {
			return nil, err
		}
		if ok {
			raw = append(raw, box)
		}
	}
	// Disjointify: each disjunct minus the union of its predecessors.
	var out []geom.Box
	for i, b := range raw {
		pieces := geom.SubtractAll(b, raw[:i])
		out = append(out, pieces...)
	}
	return out, nil
}

// RewriteSQL accepts a full "SELECT ... FROM ... [WHERE ...]" statement and
// rewrites its WHERE clause (everything after the last top-level WHERE
// keyword). Statements without WHERE scan everything.
func (r *Rewriter) RewriteSQL(stmt string) ([]geom.Box, error) {
	upper := strings.ToUpper(stmt)
	idx := strings.LastIndex(upper, "WHERE")
	if idx < 0 {
		return []geom.Box{geom.UniverseBox(r.dims)}, nil
	}
	return r.Rewrite(stmt[idx+len("WHERE"):])
}

// conjToBox intersects a conjunction of predicates into a single box; ok is
// false when the conjunction is unsatisfiable.
func (r *Rewriter) conjToBox(conj []pred) (geom.Box, bool, error) {
	box := geom.UniverseBox(r.dims)
	for _, p := range conj {
		dim, ok := r.cols[strings.ToLower(p.col)]
		if !ok {
			return geom.Box{}, false, fmt.Errorf("sqlrew: unknown column %q", p.col)
		}
		switch p.op {
		case ">=":
			box.Lo[dim] = math.Max(box.Lo[dim], p.val)
		case ">":
			box.Lo[dim] = math.Max(box.Lo[dim], math.Nextafter(p.val, math.Inf(1)))
		case "<=":
			box.Hi[dim] = math.Min(box.Hi[dim], p.val)
		case "<":
			box.Hi[dim] = math.Min(box.Hi[dim], math.Nextafter(p.val, math.Inf(-1)))
		case "=":
			box.Lo[dim] = math.Max(box.Lo[dim], p.val)
			box.Hi[dim] = math.Min(box.Hi[dim], p.val)
		default:
			return geom.Box{}, false, fmt.Errorf("sqlrew: operator %q must not reach box conversion", p.op)
		}
	}
	if box.IsEmpty() {
		return geom.Box{}, false, nil
	}
	return box, true, nil
}

// Dims returns the schema dimensionality.
func (r *Rewriter) Dims() int { return r.dims }
