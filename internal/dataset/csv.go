package dataset

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// WriteCSV exports the dataset with a header row of column names. Values are
// rendered with full float64 round-trip precision.
func (d *Dataset) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(d.names); err != nil {
		return err
	}
	rec := make([]string, d.Dims())
	for i := 0; i < d.rows; i++ {
		for dim := range rec {
			rec[dim] = strconv.FormatFloat(d.cols[dim][i], 'g', -1, 64)
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV imports a dataset from CSV with a header row; every non-header
// field must parse as a float64. Real deployments load their tables this
// way before partitioning them.
func ReadCSV(r io.Reader) (*Dataset, error) {
	cr := csv.NewReader(r)
	cr.ReuseRecord = true
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("dataset: reading CSV header: %w", err)
	}
	names := make([]string, len(header))
	copy(names, header)
	cols := make([][]float64, len(names))
	row := 0
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("dataset: reading CSV row %d: %w", row+1, err)
		}
		for dim, field := range rec {
			v, err := strconv.ParseFloat(field, 64)
			if err != nil {
				return nil, fmt.Errorf("dataset: row %d column %q: %w", row+1, names[dim], err)
			}
			cols[dim] = append(cols[dim], v)
		}
		row++
	}
	if row == 0 {
		return nil, fmt.Errorf("dataset: CSV has no data rows")
	}
	return New(names, cols)
}
