package dataset

import (
	"math"
	"math/rand"
	"sort"
	"strconv"
)

// TPCHLineitemNames are the 8 numeric (non-key) attributes of the TPC-H
// lineitem table that the paper's query workloads range over. Date
// attributes are encoded as day offsets from 1992-01-01, matching the
// benchmark's 7-year order window.
var TPCHLineitemNames = []string{
	"l_quantity",      // 1..50
	"l_extendedprice", // ~900..104950
	"l_discount",      // 0.00..0.10
	"l_tax",           // 0.00..0.08
	"l_shipdate",      // days 1..2526
	"l_commitdate",    // days 1..2526
	"l_receiptdate",   // days 1..2526
	"l_suppkey",       // 1..100000
}

// TPCHLike generates a lineitem-like table with the paper's observation that
// the records are (approximately) uniformly distributed over the attribute
// domains. rows is the record count; the result always has 8 attributes.
func TPCHLike(rows int, seed int64) *Dataset {
	rng := rand.New(rand.NewSource(seed))
	cols := make([][]float64, len(TPCHLineitemNames))
	for i := range cols {
		cols[i] = make([]float64, rows)
	}
	for r := 0; r < rows; r++ {
		qty := float64(1 + rng.Intn(50))
		// extendedprice = qty * partprice; partprice in [900, 2099).
		price := qty * (900 + rng.Float64()*1199)
		cols[0][r] = qty
		cols[1][r] = price
		cols[2][r] = math.Round(rng.Float64()*10) / 100 // 0.00..0.10
		cols[3][r] = math.Round(rng.Float64()*8) / 100  // 0.00..0.08
		ship := 1 + rng.Float64()*2525
		cols[4][r] = math.Floor(ship)
		cols[5][r] = math.Floor(clamp(ship+float64(rng.Intn(61)-30), 1, 2526))
		cols[6][r] = math.Floor(clamp(ship+float64(1+rng.Intn(30)), 1, 2526))
		cols[7][r] = float64(1 + rng.Intn(100000))
	}
	return MustNew(append([]string(nil), TPCHLineitemNames...), cols)
}

func clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

// OSMLike generates a 2-d point cloud imitating the skew of the
// OpenStreetMap node extract the paper uses: a Gaussian mixture whose
// cluster weights follow a power law (dense metropolitan clusters plus a
// sparse uniform background). Coordinates are (longitude, latitude).
func OSMLike(rows int, clusters int, seed int64) *Dataset {
	if clusters < 1 {
		clusters = 1
	}
	rng := rand.New(rand.NewSource(seed))
	type cluster struct {
		cx, cy, sx, sy, w float64
	}
	cs := make([]cluster, clusters)
	totalW := 0.0
	for i := range cs {
		cs[i] = cluster{
			cx: -180 + rng.Float64()*360,
			cy: -85 + rng.Float64()*170,
			sx: 0.5 + rng.Float64()*4,
			sy: 0.5 + rng.Float64()*4,
			// Power-law weights: cluster i is ~ (i+1)^-1.2.
			w: math.Pow(float64(i+1), -1.2),
		}
		totalW += cs[i].w
	}
	const background = 0.05 // 5% of points are uniform noise
	lon := make([]float64, rows)
	lat := make([]float64, rows)
	for r := 0; r < rows; r++ {
		if rng.Float64() < background {
			lon[r] = -180 + rng.Float64()*360
			lat[r] = -85 + rng.Float64()*170
			continue
		}
		// Pick a cluster by weight.
		t := rng.Float64() * totalW
		k := 0
		for ; k < len(cs)-1; k++ {
			t -= cs[k].w
			if t <= 0 {
				break
			}
		}
		lon[r] = clamp(cs[k].cx+rng.NormFloat64()*cs[k].sx, -180, 180)
		lat[r] = clamp(cs[k].cy+rng.NormFloat64()*cs[k].sy, -85, 85)
	}
	return MustNew([]string{"lon", "lat"}, [][]float64{lon, lat})
}

// Uniform generates rows records uniformly distributed in [0,1]^dims with
// generic attribute names a0, a1, ... Used by unit tests and micro-benches.
func Uniform(rows, dims int, seed int64) *Dataset {
	rng := rand.New(rand.NewSource(seed))
	cols := make([][]float64, dims)
	names := make([]string, dims)
	for d := range cols {
		cols[d] = make([]float64, rows)
		names[d] = "a" + strconv.Itoa(d)
		for r := 0; r < rows; r++ {
			cols[d][r] = rng.Float64()
		}
	}
	return MustNew(names, cols)
}

// Sample draws n distinct rows uniformly at random (without replacement)
// and returns their indices in ascending order. When n >= NumRows all rows
// are returned. This reproduces the paper's layout-generation protocol: the
// logical layout is computed on a fixed-size sample, then the full dataset
// is routed through it (§VI-A).
func (d *Dataset) Sample(n int, seed int64) []int {
	if n >= d.rows {
		idx := make([]int, d.rows)
		for i := range idx {
			idx[i] = i
		}
		return idx
	}
	rng := rand.New(rand.NewSource(seed))
	// Floyd's algorithm for a uniform n-subset of [0, rows).
	chosen := make(map[int]struct{}, n)
	for j := d.rows - n; j < d.rows; j++ {
		t := rng.Intn(j + 1)
		if _, ok := chosen[t]; ok {
			chosen[j] = struct{}{}
		} else {
			chosen[t] = struct{}{}
		}
	}
	idx := make([]int, 0, n)
	for i := range chosen {
		idx = append(idx, i)
	}
	sort.Ints(idx)
	return idx
}
