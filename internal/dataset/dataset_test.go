package dataset

import (
	"bytes"
	"math"
	"testing"

	"paw/internal/geom"
)

func TestNewValidation(t *testing.T) {
	if _, err := New([]string{"a"}, [][]float64{{1}, {2}}); err == nil {
		t.Error("mismatched names/columns must error")
	}
	if _, err := New(nil, nil); err == nil {
		t.Error("empty dataset must error")
	}
	if _, err := New([]string{"a", "b"}, [][]float64{{1, 2}, {3}}); err == nil {
		t.Error("ragged columns must error")
	}
	d, err := New([]string{"x", "y"}, [][]float64{{1, 2, 3}, {4, 5, 6}})
	if err != nil {
		t.Fatal(err)
	}
	if d.NumRows() != 3 || d.Dims() != 2 {
		t.Errorf("rows=%d dims=%d", d.NumRows(), d.Dims())
	}
}

func TestAccessors(t *testing.T) {
	d := MustNew([]string{"x", "y"}, [][]float64{{1, 2, 3}, {4, 5, 6}})
	if d.At(1, 0) != 2 || d.At(2, 1) != 6 {
		t.Error("At returned wrong values")
	}
	p := d.Point(0)
	if p[0] != 1 || p[1] != 4 {
		t.Errorf("Point(0) = %v", p)
	}
	if d.ColumnIndex("y") != 1 || d.ColumnIndex("zz") != -1 {
		t.Error("ColumnIndex wrong")
	}
	if d.RowBytes() != 32 {
		t.Errorf("RowBytes = %d, want 32", d.RowBytes())
	}
	if d.TotalBytes() != 96 {
		t.Errorf("TotalBytes = %d, want 96", d.TotalBytes())
	}
}

func TestDomain(t *testing.T) {
	d := MustNew([]string{"x", "y"}, [][]float64{{1, -2, 3}, {4, 5, 0}})
	dom := d.Domain()
	want := geom.Box{Lo: geom.Point{-2, 0}, Hi: geom.Point{3, 5}}
	if !dom.Equal(want) {
		t.Errorf("Domain = %v, want %v", dom, want)
	}
}

func TestRowInBoxAndCount(t *testing.T) {
	d := MustNew([]string{"x", "y"}, [][]float64{{0, 1, 2, 3}, {0, 1, 2, 3}})
	q := geom.Box{Lo: geom.Point{1, 1}, Hi: geom.Point{2, 2}}
	if d.CountInBox(q, nil) != 2 {
		t.Errorf("CountInBox = %d, want 2", d.CountInBox(q, nil))
	}
	if got := d.CountInBox(q, []int{0, 1}); got != 1 {
		t.Errorf("CountInBox(subset) = %d, want 1", got)
	}
	sel := d.SelectInBox(q, nil)
	if len(sel) != 2 || sel[0] != 1 || sel[1] != 2 {
		t.Errorf("SelectInBox = %v", sel)
	}
}

func TestProject(t *testing.T) {
	d := TPCHLike(100, 1)
	p := d.Project(3)
	if p.Dims() != 3 || p.NumRows() != 100 {
		t.Errorf("Project: dims=%d rows=%d", p.Dims(), p.NumRows())
	}
	if p.Names()[2] != TPCHLineitemNames[2] {
		t.Error("Project kept wrong names")
	}
	defer func() {
		if recover() == nil {
			t.Error("Project(0) must panic")
		}
	}()
	d.Project(0)
}

func TestNormalize(t *testing.T) {
	d := TPCHLike(2000, 21)
	n := d.Normalize()
	dom := n.Domain()
	for dim := 0; dim < n.Dims(); dim++ {
		if dom.Lo[dim] != 0 || math.Abs(dom.Hi[dim]-1) > 1e-12 {
			t.Errorf("dim %d domain [%v, %v], want [0,1]", dim, dom.Lo[dim], dom.Hi[dim])
		}
	}
	// Order is preserved (affine map is monotone).
	for i := 1; i < 100; i++ {
		if (d.At(i, 1) < d.At(i-1, 1)) != (n.At(i, 1) < n.At(i-1, 1)) {
			t.Fatal("Normalize broke value order")
		}
	}
	// Degenerate column maps to zero.
	flat := MustNew([]string{"c"}, [][]float64{{5, 5, 5}})
	nf := flat.Normalize()
	for i := 0; i < 3; i++ {
		if nf.At(i, 0) != 0 {
			t.Errorf("degenerate column value = %v", nf.At(i, 0))
		}
	}
}

func TestSubset(t *testing.T) {
	d := MustNew([]string{"x"}, [][]float64{{10, 20, 30, 40}})
	s := d.Subset([]int{3, 1})
	if s.NumRows() != 2 || s.At(0, 0) != 40 || s.At(1, 0) != 20 {
		t.Errorf("Subset wrong: %v %v", s.At(0, 0), s.At(1, 0))
	}
}

func TestTPCHLike(t *testing.T) {
	d := TPCHLike(5000, 42)
	if d.Dims() != 8 || d.NumRows() != 5000 {
		t.Fatalf("dims=%d rows=%d", d.Dims(), d.NumRows())
	}
	dom := d.Domain()
	// Quantity in [1,50].
	if dom.Lo[0] < 1 || dom.Hi[0] > 50 {
		t.Errorf("quantity domain %v-%v out of range", dom.Lo[0], dom.Hi[0])
	}
	// Discount in [0, 0.1].
	if dom.Lo[2] < 0 || dom.Hi[2] > 0.1+1e-9 {
		t.Errorf("discount domain %v-%v out of range", dom.Lo[2], dom.Hi[2])
	}
	// Dates in [1, 2526].
	for _, dim := range []int{4, 5, 6} {
		if dom.Lo[dim] < 1 || dom.Hi[dim] > 2526 {
			t.Errorf("date dim %d domain %v-%v out of range", dim, dom.Lo[dim], dom.Hi[dim])
		}
	}
	// Determinism.
	d2 := TPCHLike(5000, 42)
	for dim := 0; dim < 8; dim++ {
		if d.At(123, dim) != d2.At(123, dim) {
			t.Fatal("TPCHLike not deterministic for equal seeds")
		}
	}
	// Uniformity sanity: quantity mean should be near 25.5.
	sum := 0.0
	for i := 0; i < d.NumRows(); i++ {
		sum += d.At(i, 0)
	}
	if mean := sum / float64(d.NumRows()); math.Abs(mean-25.5) > 1.5 {
		t.Errorf("quantity mean = %v, want ~25.5", mean)
	}
}

func TestOSMLike(t *testing.T) {
	d := OSMLike(20000, 10, 7)
	if d.Dims() != 2 || d.NumRows() != 20000 {
		t.Fatalf("dims=%d rows=%d", d.Dims(), d.NumRows())
	}
	dom := d.Domain()
	if dom.Lo[0] < -180 || dom.Hi[0] > 180 || dom.Lo[1] < -85 || dom.Hi[1] > 85 {
		t.Errorf("OSM domain out of range: %v", dom)
	}
	// Skew sanity: the densest 1% of the lon range should hold far more than
	// 1% of points (Gaussian clusters). Use a histogram over lon.
	const bins = 100
	hist := make([]int, bins)
	for i := 0; i < d.NumRows(); i++ {
		b := int((d.At(i, 0) + 180) / 360 * bins)
		if b >= bins {
			b = bins - 1
		}
		hist[b]++
	}
	max := 0
	for _, h := range hist {
		if h > max {
			max = h
		}
	}
	if float64(max) < 3*float64(d.NumRows())/bins {
		t.Errorf("OSM data not skewed enough: max bin %d of %d rows", max, d.NumRows())
	}
}

func TestUniformGenerator(t *testing.T) {
	d := Uniform(1000, 4, 3)
	if d.Dims() != 4 || d.NumRows() != 1000 {
		t.Fatal("shape wrong")
	}
	dom := d.Domain()
	for dim := 0; dim < 4; dim++ {
		if dom.Lo[dim] < 0 || dom.Hi[dim] > 1 {
			t.Errorf("dim %d domain %v-%v", dim, dom.Lo[dim], dom.Hi[dim])
		}
	}
	if d.Names()[3] != "a3" {
		t.Errorf("name = %q, want a3", d.Names()[3])
	}
}

func TestSample(t *testing.T) {
	d := Uniform(1000, 2, 1)
	idx := d.Sample(100, 5)
	if len(idx) != 100 {
		t.Fatalf("sample size = %d", len(idx))
	}
	seen := map[int]bool{}
	prev := -1
	for _, i := range idx {
		if i < 0 || i >= 1000 {
			t.Fatalf("index %d out of range", i)
		}
		if seen[i] {
			t.Fatalf("duplicate index %d", i)
		}
		if i <= prev {
			t.Fatal("sample not sorted ascending")
		}
		seen[i] = true
		prev = i
	}
	// Sampling more than the population returns everything.
	all := d.Sample(5000, 5)
	if len(all) != 1000 {
		t.Errorf("oversample returned %d rows", len(all))
	}
	// Determinism.
	idx2 := d.Sample(100, 5)
	for k := range idx {
		if idx[k] != idx2[k] {
			t.Fatal("Sample not deterministic for equal seeds")
		}
	}
}

func TestRoundTripIO(t *testing.T) {
	d := TPCHLike(500, 9)
	var buf bytes.Buffer
	if _, err := d.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Dims() != d.Dims() || got.NumRows() != d.NumRows() {
		t.Fatalf("shape mismatch after round trip")
	}
	for i, n := range d.Names() {
		if got.Names()[i] != n {
			t.Errorf("name %d = %q, want %q", i, got.Names()[i], n)
		}
	}
	for i := 0; i < d.NumRows(); i += 37 {
		for dim := 0; dim < d.Dims(); dim++ {
			if got.At(i, dim) != d.At(i, dim) {
				t.Fatalf("value mismatch at row %d dim %d", i, dim)
			}
		}
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	if _, err := Read(bytes.NewReader([]byte{1, 2, 3, 4, 5, 6, 7, 8})); err == nil {
		t.Error("bad magic must error")
	}
	if _, err := Read(bytes.NewReader(nil)); err == nil {
		t.Error("empty input must error")
	}
	// Truncated payload.
	d := Uniform(100, 2, 1)
	var buf bytes.Buffer
	if _, err := d.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()/2]
	if _, err := Read(bytes.NewReader(trunc)); err == nil {
		t.Error("truncated input must error")
	}
}
