package dataset

import (
	"bytes"
	"strings"
	"testing"
)

func TestCSVRoundTrip(t *testing.T) {
	d := TPCHLike(300, 31)
	var buf bytes.Buffer
	if err := d.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumRows() != d.NumRows() || got.Dims() != d.Dims() {
		t.Fatalf("shape: %dx%d vs %dx%d", got.NumRows(), got.Dims(), d.NumRows(), d.Dims())
	}
	for i, n := range d.Names() {
		if got.Names()[i] != n {
			t.Errorf("name %d = %q", i, got.Names()[i])
		}
	}
	for i := 0; i < d.NumRows(); i += 17 {
		for dim := 0; dim < d.Dims(); dim++ {
			if got.At(i, dim) != d.At(i, dim) {
				t.Fatalf("value mismatch at %d/%d: %v vs %v", i, dim, got.At(i, dim), d.At(i, dim))
			}
		}
	}
}

func TestReadCSVHandRolled(t *testing.T) {
	in := "x,y\n1.5,2\n-3,4e2\n"
	d, err := ReadCSV(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if d.NumRows() != 2 || d.At(1, 1) != 400 || d.At(1, 0) != -3 {
		t.Errorf("parsed wrong: %v %v", d.At(1, 0), d.At(1, 1))
	}
}

func TestReadCSVErrors(t *testing.T) {
	cases := []string{
		"",                  // no header
		"x,y\n",             // no data rows
		"x,y\n1,notanumber", // bad value
		"x,y\n1\n",          // ragged row
	}
	for _, in := range cases {
		if _, err := ReadCSV(strings.NewReader(in)); err == nil {
			t.Errorf("input %q must error", in)
		}
	}
}
