package dataset

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// Binary format:
//
//	magic   uint32  'PAWD'
//	version uint16  1
//	dims    uint16
//	rows    uint64
//	for each column: nameLen uint16, name bytes
//	for each column: rows float64 values (little endian)
const (
	fileMagic   = 0x50415744 // "PAWD"
	fileVersion = 1
)

// WriteTo serialises the dataset to w in the PAWD binary format.
func (d *Dataset) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	var n int64
	write := func(v any) error {
		if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
			return err
		}
		n += int64(binary.Size(v))
		return nil
	}
	if err := write(uint32(fileMagic)); err != nil {
		return n, err
	}
	if err := write(uint16(fileVersion)); err != nil {
		return n, err
	}
	if err := write(uint16(d.Dims())); err != nil {
		return n, err
	}
	if err := write(uint64(d.rows)); err != nil {
		return n, err
	}
	for _, name := range d.names {
		if len(name) > math.MaxUint16 {
			return n, fmt.Errorf("dataset: column name too long: %d bytes", len(name))
		}
		if err := write(uint16(len(name))); err != nil {
			return n, err
		}
		m, err := bw.WriteString(name)
		n += int64(m)
		if err != nil {
			return n, err
		}
	}
	buf := make([]byte, 8)
	for _, col := range d.cols {
		for _, v := range col {
			binary.LittleEndian.PutUint64(buf, math.Float64bits(v))
			m, err := bw.Write(buf)
			n += int64(m)
			if err != nil {
				return n, err
			}
		}
	}
	return n, bw.Flush()
}

// Read deserialises a dataset from the PAWD binary format.
func Read(r io.Reader) (*Dataset, error) {
	br := bufio.NewReader(r)
	var magic uint32
	if err := binary.Read(br, binary.LittleEndian, &magic); err != nil {
		return nil, fmt.Errorf("dataset: reading magic: %w", err)
	}
	if magic != fileMagic {
		return nil, fmt.Errorf("dataset: bad magic %#x", magic)
	}
	var version, dims uint16
	if err := binary.Read(br, binary.LittleEndian, &version); err != nil {
		return nil, err
	}
	if version != fileVersion {
		return nil, fmt.Errorf("dataset: unsupported version %d", version)
	}
	if err := binary.Read(br, binary.LittleEndian, &dims); err != nil {
		return nil, err
	}
	if dims == 0 {
		return nil, fmt.Errorf("dataset: zero dimensions")
	}
	var rows uint64
	if err := binary.Read(br, binary.LittleEndian, &rows); err != nil {
		return nil, err
	}
	names := make([]string, dims)
	for i := range names {
		var nameLen uint16
		if err := binary.Read(br, binary.LittleEndian, &nameLen); err != nil {
			return nil, err
		}
		b := make([]byte, nameLen)
		if _, err := io.ReadFull(br, b); err != nil {
			return nil, err
		}
		names[i] = string(b)
	}
	cols := make([][]float64, dims)
	buf := make([]byte, 8)
	for i := range cols {
		col := make([]float64, rows)
		for j := range col {
			if _, err := io.ReadFull(br, buf); err != nil {
				return nil, fmt.Errorf("dataset: reading column %d row %d: %w", i, j, err)
			}
			col[j] = math.Float64frombits(binary.LittleEndian.Uint64(buf))
		}
		cols[i] = col
	}
	return New(names, cols)
}
