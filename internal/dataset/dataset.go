// Package dataset provides the in-memory table substrate the partitioner
// operates on: a column-major matrix of float64 attributes together with
// synthetic generators that stand in for the paper's TPC-H lineitem table
// and OSM point extract, plus sampling and binary (de)serialisation.
//
// All partitioning methods in the paper consume only numeric attributes
// (SQL predicates are rewritten to ranges, §III-B), so a float64 matrix is a
// faithful substrate. Row size is modelled as 16 bytes per attribute, which
// reproduces the paper's ~128 B/row for the 8-attribute lineitem table.
package dataset

import (
	"fmt"
	"math"

	"paw/internal/geom"
)

// BytesPerAttribute is the simulated storage footprint of one attribute of
// one record. 16·dims matches the paper's 75 GB / 600 M rows ≈ 128 B per
// 8-attribute row.
const BytesPerAttribute = 16

// Dataset is an immutable column-major table of float64 attributes.
type Dataset struct {
	names []string
	cols  [][]float64
	rows  int
}

// New builds a dataset from column slices. All columns must share one
// length. The column slices are retained, not copied.
func New(names []string, cols [][]float64) (*Dataset, error) {
	if len(names) != len(cols) {
		return nil, fmt.Errorf("dataset: %d names for %d columns", len(names), len(cols))
	}
	if len(cols) == 0 {
		return nil, fmt.Errorf("dataset: no columns")
	}
	rows := len(cols[0])
	for i, c := range cols {
		if len(c) != rows {
			return nil, fmt.Errorf("dataset: column %q has %d rows, want %d", names[i], len(c), rows)
		}
	}
	return &Dataset{names: names, cols: cols, rows: rows}, nil
}

// MustNew is New but panics on error; intended for tests and generators
// whose inputs are correct by construction.
func MustNew(names []string, cols [][]float64) *Dataset {
	d, err := New(names, cols)
	if err != nil {
		panic(err)
	}
	return d
}

// NumRows returns the number of records.
func (d *Dataset) NumRows() int { return d.rows }

// Dims returns the number of attributes.
func (d *Dataset) Dims() int { return len(d.cols) }

// Names returns the attribute names. Callers must not mutate the slice.
func (d *Dataset) Names() []string { return d.names }

// ColumnIndex returns the index of the named attribute, or -1.
func (d *Dataset) ColumnIndex(name string) int {
	for i, n := range d.names {
		if n == name {
			return i
		}
	}
	return -1
}

// At returns attribute dim of row i.
func (d *Dataset) At(i, dim int) float64 { return d.cols[dim][i] }

// Point materialises row i as a geom.Point. It allocates; hot loops should
// use At directly.
func (d *Dataset) Point(i int) geom.Point {
	p := make(geom.Point, len(d.cols))
	for dim := range d.cols {
		p[dim] = d.cols[dim][i]
	}
	return p
}

// Column returns the raw column slice for dimension dim. Callers must not
// mutate it.
func (d *Dataset) Column(dim int) []float64 { return d.cols[dim] }

// RowBytes returns the simulated size in bytes of one record.
func (d *Dataset) RowBytes() int64 { return int64(d.Dims()) * BytesPerAttribute }

// TotalBytes returns the simulated size in bytes of the whole dataset.
func (d *Dataset) TotalBytes() int64 { return int64(d.rows) * d.RowBytes() }

// Domain returns the MBR of all records.
func (d *Dataset) Domain() geom.Box {
	lo := make(geom.Point, d.Dims())
	hi := make(geom.Point, d.Dims())
	for dim, col := range d.cols {
		mn, mx := math.Inf(1), math.Inf(-1)
		for _, v := range col {
			if v < mn {
				mn = v
			}
			if v > mx {
				mx = v
			}
		}
		lo[dim], hi[dim] = mn, mx
	}
	return geom.Box{Lo: lo, Hi: hi}
}

// RowInBox reports whether row i lies inside the closed box q. q may have
// fewer dimensions than the dataset only if it has exactly d.Dims()
// dimensions — mismatches are programmer errors and panic via slice bounds.
func (d *Dataset) RowInBox(i int, q geom.Box) bool {
	for dim := range d.cols {
		v := d.cols[dim][i]
		if v < q.Lo[dim] || v > q.Hi[dim] {
			return false
		}
	}
	return true
}

// CountInBox returns the number of records inside q, considering only the
// rows listed in idx (or all rows when idx is nil).
func (d *Dataset) CountInBox(q geom.Box, idx []int) int {
	n := 0
	if idx == nil {
		for i := 0; i < d.rows; i++ {
			if d.RowInBox(i, q) {
				n++
			}
		}
		return n
	}
	for _, i := range idx {
		if d.RowInBox(i, q) {
			n++
		}
	}
	return n
}

// SelectInBox returns the indices (from idx, or all rows when idx is nil)
// of records inside q.
func (d *Dataset) SelectInBox(q geom.Box, idx []int) []int {
	var out []int
	if idx == nil {
		for i := 0; i < d.rows; i++ {
			if d.RowInBox(i, q) {
				out = append(out, i)
			}
		}
		return out
	}
	for _, i := range idx {
		if d.RowInBox(i, q) {
			out = append(out, i)
		}
	}
	return out
}

// Project returns a new dataset keeping only the first k attributes. Used by
// the dimensionality sweep (Fig. 16): queries are posed on the first #dims
// attributes while partitions store all dimensions; projecting the *query*
// space is achieved by building layouts over the projected dataset.
func (d *Dataset) Project(k int) *Dataset {
	if k <= 0 || k > d.Dims() {
		panic(fmt.Sprintf("dataset: project to %d of %d dims", k, d.Dims()))
	}
	return &Dataset{names: d.names[:k], cols: d.cols[:k], rows: d.rows}
}

// Normalize returns a copy with every attribute affinely mapped to [0, 1]
// (degenerate attributes map to 0). The paper's workload-distance threshold
// δ (Definition 1) is a single L∞ value across dimensions, which only makes
// sense on commensurable scales; the evaluation harness therefore
// partitions normalized datasets.
func (d *Dataset) Normalize() *Dataset {
	dom := d.Domain()
	cols := make([][]float64, d.Dims())
	for dim := range cols {
		lo := dom.Lo[dim]
		span := dom.Hi[dim] - lo
		src := d.cols[dim]
		c := make([]float64, len(src))
		if span > 0 {
			inv := 1 / span
			for i, v := range src {
				c[i] = (v - lo) * inv
			}
		}
		cols[dim] = c
	}
	names := make([]string, len(d.names))
	copy(names, d.names)
	return &Dataset{names: names, cols: cols, rows: d.rows}
}

// Subset materialises the given rows as a new dataset (copies data).
func (d *Dataset) Subset(idx []int) *Dataset {
	cols := make([][]float64, d.Dims())
	for dim := range cols {
		c := make([]float64, len(idx))
		src := d.cols[dim]
		for j, i := range idx {
			c[j] = src[i]
		}
		cols[dim] = c
	}
	names := make([]string, len(d.names))
	copy(names, d.names)
	return &Dataset{names: names, cols: cols, rows: len(idx)}
}
