package geom

import (
	"math"
	"math/rand"
	"testing"
)

func TestRegionFromDifference(t *testing.T) {
	outer := box2(0, 0, 10, 10)
	holes := []Box{box2(0, 0, 3, 3), box2(7, 7, 10, 10)}
	r := RegionFromDifference(outer, holes)
	if r.IsEmpty() {
		t.Fatal("region should not be empty")
	}
	if v := r.Volume(); math.Abs(v-(100-9-9)) > 1e-9 {
		t.Errorf("region volume = %v, want 82", v)
	}
	if !r.Contains(Point{5, 5}) {
		t.Error("region must contain (5,5)")
	}
	if r.Contains(Point{1, 1}) {
		t.Error("region must not contain interior of hole (1,1)")
	}
}

func TestRegionIntersects(t *testing.T) {
	outer := box2(0, 0, 10, 10)
	hole := box2(2, 2, 8, 8)
	r := RegionFromDifference(outer, []Box{hole})
	// A query fully inside the hole interior should not intersect the frame
	// region except at boundaries; use a strictly interior query.
	if r.Intersects(box2(3, 3, 7, 7)) {
		t.Error("query strictly inside the hole must not intersect the frame region")
	}
	if !r.Intersects(box2(0, 0, 1, 1)) {
		t.Error("query in the frame must intersect")
	}
	if !r.Intersects(box2(1, 1, 3, 3)) {
		t.Error("query straddling the hole boundary must intersect")
	}
	if r.Intersects(box2(20, 20, 30, 30)) {
		t.Error("query outside the outer box must not intersect")
	}
}

func TestRegionEmpty(t *testing.T) {
	outer := box2(0, 0, 10, 10)
	r := RegionFromDifference(outer, []Box{outer})
	if !r.IsEmpty() {
		t.Errorf("subtracting the outer box itself must empty the region, got %v", r.Boxes())
	}
	if r.Intersects(box2(0, 0, 10, 10)) {
		t.Error("empty region intersects nothing")
	}
}

func TestRegionMBR(t *testing.T) {
	r := NewRegion([]Box{box2(0, 0, 1, 1), box2(5, 5, 6, 7)})
	if !r.MBR().Equal(box2(0, 0, 6, 7)) {
		t.Errorf("MBR = %v", r.MBR())
	}
}

func TestNewRegionDropsEmpty(t *testing.T) {
	r := NewRegion([]Box{box2(1, 0, 0, 1), box2(0, 0, 1, 1)})
	if len(r.Boxes()) != 1 {
		t.Errorf("NewRegion should drop empty boxes, kept %d", len(r.Boxes()))
	}
}

// Property: region membership agrees with "inside outer and not strictly
// inside any hole" for random configurations.
func TestRegionMembershipProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for iter := 0; iter < 100; iter++ {
		outer := randomBox(rng, 3)
		nh := rng.Intn(4)
		holes := make([]Box, nh)
		for i := range holes {
			holes[i] = randomBox(rng, 3)
		}
		r := RegionFromDifference(outer, holes)
		for k := 0; k < 40; k++ {
			p := randomPointIn(rng, outer)
			inHole := false
			for _, h := range holes {
				if strictlyInside(p, h) {
					inHole = true
					break
				}
			}
			got := r.Contains(p)
			if inHole && got {
				t.Fatalf("point %v strictly inside a hole but region contains it", p)
			}
			onBoundary := false
			for _, h := range holes {
				if h.Contains(p) && !strictlyInside(p, h) {
					onBoundary = true
					break
				}
			}
			if !inHole && !onBoundary && !got {
				t.Fatalf("point %v outside all holes but region misses it", p)
			}
		}
	}
}
