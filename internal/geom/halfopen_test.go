package geom

import (
	"math"
	"math/rand"
	"testing"
)

func TestHalfOpenContains(t *testing.T) {
	h := HalfOpenBox{Box: box2(0, 0, 10, 10), OpenLo: 1, OpenHi: 2} // dim0 lower open, dim1 upper open
	cases := []struct {
		p    Point
		want bool
	}{
		{Point{5, 5}, true},
		{Point{0, 5}, false},  // on open lower face of dim0
		{Point{5, 10}, false}, // on open upper face of dim1
		{Point{10, 5}, true},  // closed upper face of dim0
		{Point{5, 0}, true},   // closed lower face of dim1
	}
	for _, c := range cases {
		if got := h.Contains(c.p); got != c.want {
			t.Errorf("Contains(%v) = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestHalfOpenIntersectsBox(t *testing.T) {
	h := HalfOpenBox{Box: box2(0, 0, 10, 10), OpenHi: 1} // dim0 upper face open
	// Query touching only the open face: no intersection.
	if h.IntersectsBox(box2(10, 2, 15, 5)) {
		t.Error("contact on an open face must not intersect")
	}
	// Query overlapping past the face: intersects.
	if !h.IntersectsBox(box2(9.9, 2, 15, 5)) {
		t.Error("overlap must intersect")
	}
	// Contact on a closed face still intersects.
	if !h.IntersectsBox(box2(-5, 2, 0, 5)) {
		t.Error("contact on a closed face must intersect")
	}
}

func TestHalfOpenIsEmpty(t *testing.T) {
	if Closed(box2(0, 0, 1, 1)).IsEmpty() {
		t.Error("closed box not empty")
	}
	// Degenerate dimension with an open face is empty.
	h := HalfOpenBox{Box: box2(0, 0, 0, 10), OpenLo: 1}
	if !h.IsEmpty() {
		t.Error("degenerate open slab must be empty")
	}
	// Degenerate with closed faces contains the plane.
	h = HalfOpenBox{Box: box2(0, 0, 0, 10)}
	if h.IsEmpty() {
		t.Error("degenerate closed slab holds points")
	}
	if !h.Contains(Point{0, 5}) {
		t.Error("plane point must be contained")
	}
}

func TestSubtractOpenCenterHole(t *testing.T) {
	outer := Closed(box2(0, 0, 10, 10))
	hole := box2(4, 4, 6, 6)
	pieces := SubtractOpen(outer, hole)
	vol := 0.0
	for _, p := range pieces {
		vol += p.Volume()
	}
	if math.Abs(vol-96) > 1e-9 {
		t.Errorf("volume %v, want 96", vol)
	}
	r := OpenRegion{boxes: pieces}
	// Hole boundary points belong to the hole, not the region.
	for _, p := range []Point{{4, 4}, {6, 6}, {5, 4}, {4, 5}, {6, 5}} {
		if r.Contains(p) {
			t.Errorf("hole boundary point %v must not be in the region", p)
		}
	}
	// Points just outside the hole are in the region.
	eps := 1e-9
	for _, p := range []Point{{4 - eps, 5}, {6 + eps, 5}, {5, 4 - eps}, {5, 6 + eps}} {
		if !r.Contains(p) {
			t.Errorf("point %v just outside the hole must be in the region", p)
		}
	}
	// Outer boundary stays closed.
	if !r.Contains(Point{0, 0}) || !r.Contains(Point{10, 10}) {
		t.Error("outer corners must remain in the region")
	}
}

// TestSubtractOpenQueryTouchingHole is the property that motivated half-open
// boxes: a query lying exactly inside the hole, with faces on the hole's
// boundary, must NOT intersect the leftover region.
func TestSubtractOpenQueryTouchingHole(t *testing.T) {
	r := OpenRegionFromDifference(box2(0, 0, 10, 10), []Box{box2(4, 4, 6, 6)})
	if r.IntersectsBox(box2(4, 4, 6, 6)) {
		t.Error("query equal to the hole must not intersect the region")
	}
	if r.IntersectsBox(box2(4.5, 4.5, 6, 6)) {
		t.Error("query inside the hole touching its faces must not intersect")
	}
	if !r.IntersectsBox(box2(3.9, 4.5, 6, 6)) {
		t.Error("query escaping the hole must intersect")
	}
	// Point query on the hole boundary: belongs to the hole.
	if r.IntersectsBox(box2(4, 4, 4, 4)) {
		t.Error("point query on hole corner must not intersect the region")
	}
}

func TestOpenRegionMultipleHoles(t *testing.T) {
	outer := box2(0, 0, 10, 10)
	holes := []Box{box2(0, 0, 3, 3), box2(7, 0, 10, 3), box2(0, 7, 3, 10), box2(7, 7, 10, 10)}
	r := OpenRegionFromDifference(outer, holes)
	if math.Abs(r.Volume()-(100-4*9)) > 1e-9 {
		t.Errorf("volume %v, want 64", r.Volume())
	}
	for _, h := range holes {
		if r.IntersectsBox(h) {
			t.Errorf("region intersects hole %v", h)
		}
	}
	if !r.IntersectsBox(box2(4, 4, 6, 6)) {
		t.Error("center must intersect")
	}
}

func TestOpenRegionFullCover(t *testing.T) {
	outer := box2(0, 0, 10, 10)
	r := OpenRegionFromDifference(outer, []Box{outer})
	if !r.IsEmpty() {
		t.Errorf("region must be empty, has %d boxes", len(r.Boxes()))
	}
	// A hole covering outer and more.
	r = OpenRegionFromDifference(outer, []Box{box2(-1, -1, 11, 11)})
	if !r.IsEmpty() {
		t.Error("region must be empty under a larger hole")
	}
}

// Property test: membership in the open region is exactly "in outer and in
// no hole (boundaries included)".
func TestOpenRegionMembershipProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for iter := 0; iter < 150; iter++ {
		outer := randomBox(rng, 3)
		nh := rng.Intn(4)
		holes := make([]Box, nh)
		for i := range holes {
			holes[i] = randomBox(rng, 3)
		}
		r := OpenRegionFromDifference(outer, holes)
		for k := 0; k < 40; k++ {
			var p Point
			if k%4 == 0 && nh > 0 {
				// Bias some samples onto hole boundaries.
				h := holes[rng.Intn(nh)]
				p = randomPointIn(rng, h)
				d := rng.Intn(3)
				if rng.Intn(2) == 0 {
					p[d] = h.Lo[d]
				} else {
					p[d] = h.Hi[d]
				}
				if !outer.Contains(p) {
					continue
				}
			} else {
				p = randomPointIn(rng, outer)
			}
			inHole := false
			for _, h := range holes {
				if h.Contains(p) {
					inHole = true
					break
				}
			}
			if got := r.Contains(p); got == inHole {
				t.Fatalf("point %v: region.Contains=%v but inHole=%v (outer=%v holes=%v)",
					p, got, inHole, outer, holes)
			}
		}
	}
}

// Property: subtraction pieces are pairwise disjoint including boundaries
// (sampled on piece corners).
func TestSubtractOpenDisjointProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for iter := 0; iter < 100; iter++ {
		outer := randomBox(rng, 2)
		holes := []Box{randomBox(rng, 2), randomBox(rng, 2)}
		r := OpenRegionFromDifference(outer, holes)
		boxes := r.Boxes()
		for i := range boxes {
			// Corners of box i must not be contained in any other box.
			corners := []Point{
				{boxes[i].Lo[0], boxes[i].Lo[1]},
				{boxes[i].Lo[0], boxes[i].Hi[1]},
				{boxes[i].Hi[0], boxes[i].Lo[1]},
				{boxes[i].Hi[0], boxes[i].Hi[1]},
			}
			for j := range boxes {
				if i == j {
					continue
				}
				for _, c := range corners {
					if boxes[i].Contains(c) && boxes[j].Contains(c) {
						t.Fatalf("boxes %d and %d both contain corner %v", i, j, c)
					}
				}
			}
		}
	}
}
