// Package geom provides d-dimensional axis-aligned geometry primitives used
// throughout the partitioner: points, closed boxes, box algebra (clipping,
// subtraction) and regions (unions of disjoint boxes).
//
// All boxes are closed on both ends: a point x lies in box b when
// b.Lo[d] <= x[d] <= b.Hi[d] for every dimension d. Closed semantics match
// the range-query model of the paper (SQL predicates such as A >= 10 AND
// A <= 50 translate to closed intervals).
package geom

import (
	"fmt"
	"math"
	"strings"
)

// Point is a d-dimensional point. The slice length is the dimensionality.
type Point []float64

// Clone returns an independent copy of p.
func (p Point) Clone() Point {
	q := make(Point, len(p))
	copy(q, p)
	return q
}

// Box is a closed axis-aligned d-dimensional rectangle [Lo, Hi].
// A Box is empty when Lo[d] > Hi[d] for some dimension d.
type Box struct {
	Lo, Hi Point
}

// NewBox builds a box from lower and upper corners. It panics when the
// corners disagree on dimensionality, since that is always a programming
// error rather than a data error.
func NewBox(lo, hi Point) Box {
	if len(lo) != len(hi) {
		panic(fmt.Sprintf("geom: corner dimensionality mismatch: %d vs %d", len(lo), len(hi)))
	}
	return Box{Lo: lo.Clone(), Hi: hi.Clone()}
}

// UnitBox returns the box [0,1]^dims.
func UnitBox(dims int) Box {
	lo := make(Point, dims)
	hi := make(Point, dims)
	for d := range hi {
		hi[d] = 1
	}
	return Box{Lo: lo, Hi: hi}
}

// UniverseBox returns the box (-inf, +inf)^dims, which intersects everything.
func UniverseBox(dims int) Box {
	lo := make(Point, dims)
	hi := make(Point, dims)
	for d := range lo {
		lo[d] = math.Inf(-1)
		hi[d] = math.Inf(1)
	}
	return Box{Lo: lo, Hi: hi}
}

// Dims returns the dimensionality of the box.
func (b Box) Dims() int { return len(b.Lo) }

// Clone returns a deep copy of b.
func (b Box) Clone() Box {
	return Box{Lo: b.Lo.Clone(), Hi: b.Hi.Clone()}
}

// IsEmpty reports whether the box contains no points.
func (b Box) IsEmpty() bool {
	for d := range b.Lo {
		if b.Lo[d] > b.Hi[d] {
			return true
		}
	}
	return len(b.Lo) == 0
}

// Contains reports whether point x lies inside the closed box.
func (b Box) Contains(x Point) bool {
	for d := range b.Lo {
		if x[d] < b.Lo[d] || x[d] > b.Hi[d] {
			return false
		}
	}
	return true
}

// ContainsBox reports whether o is entirely inside b. An empty o is
// contained in everything.
func (b Box) ContainsBox(o Box) bool {
	if o.IsEmpty() {
		return true
	}
	for d := range b.Lo {
		if o.Lo[d] < b.Lo[d] || o.Hi[d] > b.Hi[d] {
			return false
		}
	}
	return true
}

// Intersects reports whether the closed boxes share at least one point.
func (b Box) Intersects(o Box) bool {
	if b.IsEmpty() || o.IsEmpty() {
		return false
	}
	for d := range b.Lo {
		if b.Lo[d] > o.Hi[d] || o.Lo[d] > b.Hi[d] {
			return false
		}
	}
	return true
}

// Intersection returns b ∩ o and whether it is non-empty.
func (b Box) Intersection(o Box) (Box, bool) {
	if !b.Intersects(o) {
		return Box{}, false
	}
	lo := make(Point, b.Dims())
	hi := make(Point, b.Dims())
	for d := range lo {
		lo[d] = math.Max(b.Lo[d], o.Lo[d])
		hi[d] = math.Min(b.Hi[d], o.Hi[d])
	}
	return Box{Lo: lo, Hi: hi}, true
}

// Clip returns b clipped to the bounds of o (the same as Intersection but
// returns an empty box instead of a flag).
func (b Box) Clip(o Box) Box {
	if r, ok := b.Intersection(o); ok {
		return r
	}
	// A canonical empty box of the right dimensionality.
	lo := make(Point, b.Dims())
	hi := make(Point, b.Dims())
	for d := range lo {
		lo[d], hi[d] = 1, 0
	}
	return Box{Lo: lo, Hi: hi}
}

// Volume returns the d-dimensional volume of the box. Empty boxes have
// volume 0. Degenerate boxes (zero extent in some dimension) also have
// volume 0 even though they may contain points.
func (b Box) Volume() float64 {
	if b.IsEmpty() {
		return 0
	}
	v := 1.0
	for d := range b.Lo {
		v *= b.Hi[d] - b.Lo[d]
	}
	return v
}

// Center returns the center vector GP.c of the box (paper §IV-B).
func (b Box) Center() Point {
	c := make(Point, b.Dims())
	for d := range c {
		c[d] = (b.Lo[d] + b.Hi[d]) / 2
	}
	return c
}

// Radius returns the radius vector GP.r of the box (paper §IV-B): half the
// extent along every dimension.
func (b Box) Radius() Point {
	r := make(Point, b.Dims())
	for d := range r {
		r[d] = (b.Hi[d] - b.Lo[d]) / 2
	}
	return r
}

// Extend grows the box by delta on both ends of every dimension. This is the
// query-extension operation that produces the worst-case workload Q*F
// (paper §IV-A): [q.l − δ, q.u + δ].
func (b Box) Extend(delta float64) Box {
	lo := make(Point, b.Dims())
	hi := make(Point, b.Dims())
	for d := range lo {
		lo[d] = b.Lo[d] - delta
		hi[d] = b.Hi[d] + delta
	}
	return Box{Lo: lo, Hi: hi}
}

// Scale enlarges the box around its center by factor f along every
// dimension: GP' = GP.c ± f·GP.r (paper Fig. 8).
func (b Box) Scale(f float64) Box {
	c := b.Center()
	r := b.Radius()
	lo := make(Point, b.Dims())
	hi := make(Point, b.Dims())
	for d := range lo {
		lo[d] = c[d] - f*r[d]
		hi[d] = c[d] + f*r[d]
	}
	return Box{Lo: lo, Hi: hi}
}

// RelPosition returns F_GP(x) = max_d |x_d − c_d| / r_d, the relative
// position of record x in the box (paper §IV-B). Points inside the box have
// F <= 1. A dimension with zero radius contributes 0 when x matches the
// center exactly and +inf otherwise.
func (b Box) RelPosition(x Point) float64 {
	c := b.Center()
	r := b.Radius()
	f := 0.0
	for d := range c {
		num := math.Abs(x[d] - c[d])
		switch {
		case r[d] > 0:
			if q := num / r[d]; q > f {
				f = q
			}
		case num > 0:
			return math.Inf(1)
		}
	}
	return f
}

// Equal reports exact equality of corners.
func (b Box) Equal(o Box) bool {
	if b.Dims() != o.Dims() {
		return false
	}
	for d := range b.Lo {
		if b.Lo[d] != o.Lo[d] || b.Hi[d] != o.Hi[d] {
			return false
		}
	}
	return true
}

// String renders the box as [lo1,hi1]x[lo2,hi2]x...
func (b Box) String() string {
	var sb strings.Builder
	for d := range b.Lo {
		if d > 0 {
			sb.WriteByte('x')
		}
		fmt.Fprintf(&sb, "[%g,%g]", b.Lo[d], b.Hi[d])
	}
	return sb.String()
}

// MBR returns the minimum bounding rectangle of the given boxes. It panics
// on an empty input because an MBR of nothing has no dimensionality.
func MBR(boxes ...Box) Box {
	if len(boxes) == 0 {
		panic("geom: MBR of zero boxes")
	}
	out := boxes[0].Clone()
	for _, b := range boxes[1:] {
		for d := range out.Lo {
			out.Lo[d] = math.Min(out.Lo[d], b.Lo[d])
			out.Hi[d] = math.Max(out.Hi[d], b.Hi[d])
		}
	}
	return out
}

// MBRPoints returns the minimum bounding rectangle of the given points.
func MBRPoints(pts []Point) Box {
	if len(pts) == 0 {
		panic("geom: MBR of zero points")
	}
	lo := pts[0].Clone()
	hi := pts[0].Clone()
	for _, p := range pts[1:] {
		for d := range lo {
			lo[d] = math.Min(lo[d], p[d])
			hi[d] = math.Max(hi[d], p[d])
		}
	}
	return Box{Lo: lo, Hi: hi}
}

// Subtract computes a \ b as a set of disjoint boxes covering exactly the
// points of a that are not interior to b. The result has at most 2·dims
// boxes. Boundary points shared with b may appear in the result (closed-box
// subtraction cannot represent half-open slabs); callers that partition
// *records* resolve ties by explicit membership tests, and all volume-based
// reasoning is unaffected because boundaries have measure zero.
func Subtract(a, b Box) []Box {
	inter, ok := a.Intersection(b)
	if !ok {
		return []Box{a.Clone()}
	}
	if inter.Equal(a) {
		return nil
	}
	var out []Box
	rest := a.Clone()
	for d := 0; d < a.Dims(); d++ {
		// Slab below b in dimension d.
		if rest.Lo[d] < inter.Lo[d] {
			s := rest.Clone()
			s.Hi[d] = inter.Lo[d]
			out = append(out, s)
			rest.Lo[d] = inter.Lo[d]
		}
		// Slab above b in dimension d.
		if rest.Hi[d] > inter.Hi[d] {
			s := rest.Clone()
			s.Lo[d] = inter.Hi[d]
			out = append(out, s)
			rest.Hi[d] = inter.Hi[d]
		}
	}
	return out
}

// SubtractAll computes a \ (b1 ∪ b2 ∪ ...) as a set of disjoint
// (measure-theoretically) boxes.
func SubtractAll(a Box, holes []Box) []Box {
	cur := []Box{a.Clone()}
	for _, h := range holes {
		var next []Box
		for _, c := range cur {
			next = append(next, Subtract(c, h)...)
		}
		cur = next
		if len(cur) == 0 {
			break
		}
	}
	return cur
}
