package geom

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func box2(l0, l1, h0, h1 float64) Box {
	return Box{Lo: Point{l0, l1}, Hi: Point{h0, h1}}
}

func TestBoxContains(t *testing.T) {
	b := box2(0, 0, 10, 5)
	cases := []struct {
		p    Point
		want bool
	}{
		{Point{5, 2}, true},
		{Point{0, 0}, true},  // lower corner is closed
		{Point{10, 5}, true}, // upper corner is closed
		{Point{10.1, 5}, false},
		{Point{-0.1, 2}, false},
		{Point{5, 5.01}, false},
	}
	for _, c := range cases {
		if got := b.Contains(c.p); got != c.want {
			t.Errorf("Contains(%v) = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestBoxIntersects(t *testing.T) {
	b := box2(0, 0, 10, 10)
	cases := []struct {
		o    Box
		want bool
	}{
		{box2(5, 5, 15, 15), true},
		{box2(10, 10, 20, 20), true}, // touching at corner counts (closed)
		{box2(11, 0, 20, 10), false},
		{box2(-5, -5, -1, -1), false},
		{box2(2, 2, 3, 3), true}, // contained
		{box2(-1, -1, 11, 11), true},
	}
	for _, c := range cases {
		if got := b.Intersects(c.o); got != c.want {
			t.Errorf("%v.Intersects(%v) = %v, want %v", b, c.o, got, c.want)
		}
		if got := c.o.Intersects(b); got != c.want {
			t.Errorf("intersection not symmetric for %v", c.o)
		}
	}
}

func TestBoxIntersection(t *testing.T) {
	a := box2(0, 0, 10, 10)
	b := box2(5, -5, 20, 3)
	got, ok := a.Intersection(b)
	if !ok {
		t.Fatal("expected intersection")
	}
	want := box2(5, 0, 10, 3)
	if !got.Equal(want) {
		t.Errorf("Intersection = %v, want %v", got, want)
	}
	if _, ok := a.Intersection(box2(11, 11, 12, 12)); ok {
		t.Error("expected no intersection")
	}
}

func TestBoxEmpty(t *testing.T) {
	if box2(0, 0, 10, 10).IsEmpty() {
		t.Error("non-empty box reported empty")
	}
	if !box2(5, 0, 4, 10).IsEmpty() {
		t.Error("inverted box not reported empty")
	}
	if box2(3, 3, 3, 3).IsEmpty() {
		t.Error("degenerate point box should not be empty (it contains one point)")
	}
	empty := box2(5, 0, 4, 10)
	if empty.Intersects(box2(0, 0, 10, 10)) {
		t.Error("empty box must intersect nothing")
	}
	if empty.Volume() != 0 {
		t.Error("empty box must have zero volume")
	}
}

func TestBoxVolumeCenterRadius(t *testing.T) {
	b := box2(0, 2, 4, 8)
	if v := b.Volume(); v != 24 {
		t.Errorf("Volume = %v, want 24", v)
	}
	c := b.Center()
	if c[0] != 2 || c[1] != 5 {
		t.Errorf("Center = %v, want [2 5]", c)
	}
	r := b.Radius()
	if r[0] != 2 || r[1] != 3 {
		t.Errorf("Radius = %v, want [2 3]", r)
	}
}

func TestBoxExtend(t *testing.T) {
	b := box2(1, 1, 3, 3).Extend(0.5)
	want := box2(0.5, 0.5, 3.5, 3.5)
	if !b.Equal(want) {
		t.Errorf("Extend = %v, want %v", b, want)
	}
}

func TestBoxScale(t *testing.T) {
	b := box2(0, 0, 4, 2).Scale(1.5)
	want := box2(-1, -0.5, 5, 2.5)
	if !b.Equal(want) {
		t.Errorf("Scale = %v, want %v", b, want)
	}
	// f=1 is the identity.
	orig := box2(1, 2, 3, 4)
	if !orig.Scale(1).Equal(orig) {
		t.Error("Scale(1) should be identity")
	}
}

func TestRelPosition(t *testing.T) {
	b := box2(0, 0, 4, 2) // center (2,1), radius (2,1)
	cases := []struct {
		p    Point
		want float64
	}{
		{Point{2, 1}, 0},
		{Point{4, 1}, 1},
		{Point{0, 0}, 1},
		{Point{6, 1}, 2},
		{Point{2, 3}, 2},
	}
	for _, c := range cases {
		if got := b.RelPosition(c.p); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("RelPosition(%v) = %v, want %v", c.p, got, c.want)
		}
	}
	// Degenerate dimension.
	deg := box2(0, 5, 4, 5) // zero radius in dim 1
	if got := deg.RelPosition(Point{2, 5}); got != 0 {
		t.Errorf("RelPosition on degenerate center line = %v, want 0", got)
	}
	if got := deg.RelPosition(Point{2, 6}); !math.IsInf(got, 1) {
		t.Errorf("RelPosition off degenerate line = %v, want +Inf", got)
	}
}

func TestMBR(t *testing.T) {
	got := MBR(box2(0, 0, 1, 1), box2(5, -2, 6, 0.5))
	want := box2(0, -2, 6, 1)
	if !got.Equal(want) {
		t.Errorf("MBR = %v, want %v", got, want)
	}
	pts := []Point{{1, 2}, {-1, 5}, {3, 0}}
	gotP := MBRPoints(pts)
	wantP := box2(-1, 0, 3, 5)
	if !gotP.Equal(wantP) {
		t.Errorf("MBRPoints = %v, want %v", gotP, wantP)
	}
}

func TestSubtractDisjoint(t *testing.T) {
	a := box2(0, 0, 10, 10)
	out := Subtract(a, box2(20, 20, 30, 30))
	if len(out) != 1 || !out[0].Equal(a) {
		t.Errorf("subtracting a disjoint box should return the original, got %v", out)
	}
}

func TestSubtractCovering(t *testing.T) {
	a := box2(2, 2, 4, 4)
	out := Subtract(a, box2(0, 0, 10, 10))
	if len(out) != 0 {
		t.Errorf("subtracting a covering box should return nothing, got %v", out)
	}
}

func TestSubtractCenterHole(t *testing.T) {
	a := box2(0, 0, 10, 10)
	hole := box2(4, 4, 6, 6)
	out := Subtract(a, hole)
	// Volume must be 100 - 4 = 96 and pieces must be interior-disjoint.
	vol := 0.0
	for _, b := range out {
		vol += b.Volume()
	}
	if math.Abs(vol-96) > 1e-9 {
		t.Errorf("subtraction volume = %v, want 96", vol)
	}
	for i := range out {
		for j := i + 1; j < len(out); j++ {
			inter, ok := out[i].Intersection(out[j])
			if ok && inter.Volume() > 1e-12 {
				t.Errorf("pieces %v and %v overlap with volume %v", out[i], out[j], inter.Volume())
			}
		}
	}
}

// TestSubtractPointMembership samples random points and checks that the
// subtraction result classifies them exactly as "in a, not interior to b".
func TestSubtractPointMembership(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for iter := 0; iter < 200; iter++ {
		a := randomBox(rng, 3)
		b := randomBox(rng, 3)
		pieces := Subtract(a, b)
		for k := 0; k < 50; k++ {
			p := randomPointIn(rng, a)
			inPieces := false
			for _, pc := range pieces {
				if pc.Contains(p) {
					inPieces = true
					break
				}
			}
			interior := strictlyInside(p, b)
			if interior && inPieces {
				t.Fatalf("point %v interior to hole %v but present in subtraction of %v", p, b, a)
			}
			if !b.Contains(p) && !inPieces {
				t.Fatalf("point %v outside hole %v missing from subtraction of %v", p, b, a)
			}
		}
	}
}

func strictlyInside(p Point, b Box) bool {
	for d := range p {
		if p[d] <= b.Lo[d] || p[d] >= b.Hi[d] {
			return false
		}
	}
	return true
}

func randomBox(rng *rand.Rand, dims int) Box {
	lo := make(Point, dims)
	hi := make(Point, dims)
	for d := 0; d < dims; d++ {
		a, b := rng.Float64()*10, rng.Float64()*10
		if a > b {
			a, b = b, a
		}
		lo[d], hi[d] = a, b
	}
	return Box{Lo: lo, Hi: hi}
}

func randomPointIn(rng *rand.Rand, b Box) Point {
	p := make(Point, b.Dims())
	for d := range p {
		p[d] = b.Lo[d] + rng.Float64()*(b.Hi[d]-b.Lo[d])
	}
	return p
}

// TestSubtractAllVolume checks vol(a \ holes) + vol(a ∩ union(holes)) == vol(a)
// via Monte-Carlo estimation of the union term.
func TestSubtractAllVolume(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	a := box2(0, 0, 10, 10)
	holes := []Box{box2(1, 1, 4, 4), box2(3, 3, 7, 6), box2(8, 0, 10, 2)}
	pieces := SubtractAll(a, holes)
	vol := 0.0
	for _, p := range pieces {
		vol += p.Volume()
	}
	// Monte-Carlo estimate of the hole-union volume inside a.
	const n = 200000
	hit := 0
	for i := 0; i < n; i++ {
		p := randomPointIn(rng, a)
		for _, h := range holes {
			if h.Contains(p) {
				hit++
				break
			}
		}
	}
	est := a.Volume() * float64(hit) / n
	if math.Abs((a.Volume()-est)-vol) > 1.0 { // MC tolerance
		t.Errorf("SubtractAll volume = %v, MC estimate of complement = %v", vol, a.Volume()-est)
	}
}

func TestUnitAndUniverseBox(t *testing.T) {
	u := UnitBox(3)
	if u.Volume() != 1 {
		t.Errorf("unit box volume = %v", u.Volume())
	}
	inf := UniverseBox(2)
	if !inf.Intersects(box2(1e18, -1e18, 2e18, 1e18)) {
		t.Error("universe box must intersect everything")
	}
	if !inf.Contains(Point{1e300, -1e300}) {
		t.Error("universe box must contain every point")
	}
}

func TestClip(t *testing.T) {
	a := box2(0, 0, 10, 10)
	got := box2(5, 5, 20, 20).Clip(a)
	if !got.Equal(box2(5, 5, 10, 10)) {
		t.Errorf("Clip = %v", got)
	}
	if !box2(20, 20, 30, 30).Clip(a).IsEmpty() {
		t.Error("clip of disjoint boxes should be empty")
	}
}

// Property: Intersects is consistent with Intersection.
func TestQuickIntersectsConsistent(t *testing.T) {
	f := func(l0, l1, h0, h1, m0, m1, n0, n1 float64) bool {
		a := box2(norm(l0), norm(l1), norm(h0), norm(h1))
		b := box2(norm(m0), norm(m1), norm(n0), norm(n1))
		_, ok := a.Intersection(b)
		return ok == a.Intersects(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// Property: MBR contains its inputs.
func TestQuickMBRContains(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 500; i++ {
		n := 1 + rng.Intn(6)
		boxes := make([]Box, n)
		for j := range boxes {
			boxes[j] = randomBox(rng, 4)
		}
		m := MBR(boxes...)
		for _, b := range boxes {
			if !m.ContainsBox(b) {
				t.Fatalf("MBR %v does not contain %v", m, b)
			}
		}
	}
}

// Property: Extend then query containment — the extended box contains every
// box within L-inf distance delta of the original (Lemma 1's geometric core).
func TestQuickExtendDominates(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 500; i++ {
		q := randomBox(rng, 3)
		delta := rng.Float64()
		ext := q.Extend(delta)
		// Perturb each bound by at most delta.
		p := q.Clone()
		for d := range p.Lo {
			p.Lo[d] += (rng.Float64()*2 - 1) * delta
			p.Hi[d] += (rng.Float64()*2 - 1) * delta
			if p.Lo[d] > p.Hi[d] {
				p.Lo[d], p.Hi[d] = p.Hi[d], p.Lo[d]
			}
		}
		if !ext.ContainsBox(p) {
			t.Fatalf("extended box %v does not contain perturbed %v (delta=%v)", ext, p, delta)
		}
	}
}

func norm(x float64) float64 {
	if math.IsNaN(x) || math.IsInf(x, 0) {
		return 0
	}
	return math.Mod(x, 100)
}
