package geom

// HalfOpenBox is a box whose individual faces may be open (excluded).
// Irregular partitions need this: when a grouped partition GP is carved out
// of a parent box, records exactly on GP's boundary belong to GP, so the
// leftover region's faces adjacent to GP are open. Treating them as closed
// would charge the irregular partition for every query that merely touches a
// group boundary — exactly the queries Multi-Group Split isolates.
//
// Bit d of OpenLo (OpenHi) set means the lower (upper) face of dimension d
// is open. Dimensionality is limited to 32 by the bitmask width, far above
// the paper's dmax = 8.
type HalfOpenBox struct {
	Box
	OpenLo, OpenHi uint32
}

// Closed wraps a fully closed box.
func Closed(b Box) HalfOpenBox { return HalfOpenBox{Box: b} }

// IsEmpty reports whether the half-open box contains no points: some
// dimension is inverted, or degenerate (lo == hi) with either face open.
func (h HalfOpenBox) IsEmpty() bool {
	if len(h.Lo) == 0 {
		return true
	}
	for d := range h.Lo {
		if h.Lo[d] > h.Hi[d] {
			return true
		}
		if h.Lo[d] == h.Hi[d] && (h.openLo(d) || h.openHi(d)) {
			return true
		}
	}
	return false
}

func (h HalfOpenBox) openLo(d int) bool { return h.OpenLo&(1<<uint(d)) != 0 }
func (h HalfOpenBox) openHi(d int) bool { return h.OpenHi&(1<<uint(d)) != 0 }

// Contains reports whether point x lies inside, honouring open faces.
func (h HalfOpenBox) Contains(x Point) bool {
	for d := range h.Lo {
		if x[d] < h.Lo[d] || (x[d] == h.Lo[d] && h.openLo(d)) {
			return false
		}
		if x[d] > h.Hi[d] || (x[d] == h.Hi[d] && h.openHi(d)) {
			return false
		}
	}
	return true
}

// IntersectsBox reports whether a closed query box shares at least one point
// with the half-open box. On an open face, mere plane contact does not
// count.
func (h HalfOpenBox) IntersectsBox(q Box) bool {
	if h.IsEmpty() || q.IsEmpty() {
		return false
	}
	for d := range h.Lo {
		// Query entirely below the box, or touching an open lower face.
		if q.Hi[d] < h.Lo[d] || (q.Hi[d] == h.Lo[d] && h.openLo(d)) {
			return false
		}
		// Query entirely above the box, or touching an open upper face.
		if q.Lo[d] > h.Hi[d] || (q.Lo[d] == h.Hi[d] && h.openHi(d)) {
			return false
		}
	}
	return true
}

// SubtractOpen computes a \ b where b is a closed box whose points (boundary
// included) are removed. The pieces' faces that abut b are therefore open.
func SubtractOpen(a HalfOpenBox, b Box) []HalfOpenBox {
	inter, ok := a.Box.Intersection(b)
	if !ok || a.IsEmpty() {
		if a.IsEmpty() {
			return nil
		}
		return []HalfOpenBox{{Box: a.Box.Clone(), OpenLo: a.OpenLo, OpenHi: a.OpenHi}}
	}
	var out []HalfOpenBox
	rest := HalfOpenBox{Box: a.Box.Clone(), OpenLo: a.OpenLo, OpenHi: a.OpenHi}
	for d := 0; d < a.Dims(); d++ {
		bit := uint32(1) << uint(d)
		// Slab below b in dimension d: its new upper face abuts b, so it
		// is open (records at b.Lo[d] belong to b).
		if rest.Lo[d] < inter.Lo[d] {
			s := HalfOpenBox{Box: rest.Box.Clone(), OpenLo: rest.OpenLo, OpenHi: rest.OpenHi}
			s.Hi[d] = inter.Lo[d]
			s.OpenHi |= bit
			if !s.IsEmpty() {
				out = append(out, s)
			}
			rest.Lo[d] = inter.Lo[d]
			// Later slabs escape b through other dimensions, so for them
			// this plane is ordinary closed boundary.
			rest.OpenLo &^= bit
		}
		// Slab above b in dimension d.
		if rest.Hi[d] > inter.Hi[d] {
			s := HalfOpenBox{Box: rest.Box.Clone(), OpenLo: rest.OpenLo, OpenHi: rest.OpenHi}
			s.Lo[d] = inter.Hi[d]
			s.OpenLo |= bit
			if !s.IsEmpty() {
				out = append(out, s)
			}
			rest.Hi[d] = inter.Hi[d]
			rest.OpenHi &^= bit
		}
	}
	return out
}

// OpenRegion is a union of pairwise-disjoint half-open boxes, describing the
// exact point set of an irregular partition.
type OpenRegion struct {
	boxes []HalfOpenBox
}

// OpenRegionFromDifference builds the region outer \ (holes...), where every
// hole is a closed box whose points are excluded.
func OpenRegionFromDifference(outer Box, holes []Box) OpenRegion {
	cur := []HalfOpenBox{Closed(outer)}
	for _, h := range holes {
		var next []HalfOpenBox
		for _, c := range cur {
			next = append(next, SubtractOpen(c, h)...)
		}
		cur = next
		if len(cur) == 0 {
			break
		}
	}
	return OpenRegion{boxes: cur}
}

// Boxes exposes the member boxes; callers must not mutate them.
func (r OpenRegion) Boxes() []HalfOpenBox { return r.boxes }

// IsEmpty reports whether the region contains no points.
func (r OpenRegion) IsEmpty() bool { return len(r.boxes) == 0 }

// Contains reports whether the region contains point x.
func (r OpenRegion) Contains(x Point) bool {
	for _, b := range r.boxes {
		if b.Contains(x) {
			return true
		}
	}
	return false
}

// IntersectsBox reports whether a closed query box shares a point with the
// region.
func (r OpenRegion) IntersectsBox(q Box) bool {
	for _, b := range r.boxes {
		if b.IntersectsBox(q) {
			return true
		}
	}
	return false
}

// Volume returns the region's total volume (open faces are measure-zero).
func (r OpenRegion) Volume() float64 {
	v := 0.0
	for _, b := range r.boxes {
		v += b.Volume()
	}
	return v
}
