package geom

// Region is a union of pairwise disjoint boxes, used to describe
// irregular-shaped partitions (paper §IV-B): the region of an irregular
// partition IP is its parent box minus the grouped partitions carved out of
// it. Disjointness here is measure-theoretic: member boxes may share
// boundary faces but never interior volume.
type Region struct {
	boxes []Box
}

// NewRegion builds a region directly from boxes that the caller guarantees
// to be interior-disjoint.
func NewRegion(boxes []Box) Region {
	out := make([]Box, 0, len(boxes))
	for _, b := range boxes {
		if !b.IsEmpty() {
			out = append(out, b.Clone())
		}
	}
	return Region{boxes: out}
}

// RegionFromDifference builds the region outer \ (holes...).
func RegionFromDifference(outer Box, holes []Box) Region {
	return Region{boxes: SubtractAll(outer, holes)}
}

// Boxes returns the member boxes. Callers must not mutate them.
func (r Region) Boxes() []Box { return r.boxes }

// IsEmpty reports whether the region covers no volume and no points.
func (r Region) IsEmpty() bool { return len(r.boxes) == 0 }

// Volume returns the total volume of the region.
func (r Region) Volume() float64 {
	v := 0.0
	for _, b := range r.boxes {
		v += b.Volume()
	}
	return v
}

// Intersects reports whether the query box q shares a point with the region.
func (r Region) Intersects(q Box) bool {
	for _, b := range r.boxes {
		if b.Intersects(q) {
			return true
		}
	}
	return false
}

// Contains reports whether point x lies inside some member box.
func (r Region) Contains(x Point) bool {
	for _, b := range r.boxes {
		if b.Contains(x) {
			return true
		}
	}
	return false
}

// MBR returns the minimum bounding rectangle of the region. It panics on an
// empty region.
func (r Region) MBR() Box { return MBR(r.boxes...) }
