// Quickstart: build a PAW layout on synthetic TPC-H data, compare it with
// the Qd-tree and k-d tree baselines on a drifted future workload, and print
// the paper's headline metric (scan ratio).
package main

import (
	"fmt"
	"log"

	"paw"
)

func main() {
	// 1. A scaled TPC-H lineitem stand-in: 60k rows, 8 numeric attributes,
	//    projected to 4 query dimensions and normalized so the workload
	//    distance δ is meaningful across dimensions.
	data := paw.GenerateTPCH(60_000, 1).Project(4).Normalize()
	domain := data.Domain()

	// 2. A historical workload of 50 range queries, and a future workload
	//    that drifted by at most δ = 1% of the domain (Fig. 1b's scenario).
	hist := paw.UniformWorkload(domain, 50, 2)
	delta := paw.FractionOfDomain(domain, 0.01)
	future := paw.FutureWorkload(hist, delta, 1, 3)

	// 3. Build all three layouts. bmin is 10 rows of the 6k-row build
	//    sample, keeping the paper's ≈600-block dataset shape.
	opts := paw.Options{MinRows: 10, SampleRows: 6_000, Delta: delta}
	fmt.Println("method     partitions   scan ratio (future workload)")
	for _, m := range []paw.Method{paw.MethodQdTree, paw.MethodKdTree, paw.MethodPAW} {
		opts.Method = m
		l, err := paw.Build(data, hist, opts)
		if err != nil {
			log.Fatal(err)
		}
		ratio := l.ScanRatio(future.Boxes(), nil)
		fmt.Printf("%-10s %10d   %.3f%%\n", m, l.NumPartitions(), 100*ratio)
	}
	fmt.Printf("%-10s %10s   %.3f%%  (theoretical floor)\n",
		"LB-Cost", "-", 100*paw.LowerBoundRatio(data, future.Boxes()))

	// 4. Route one query by hand: which partitions would the master scan?
	l, err := paw.Build(data, hist, paw.Options{Method: paw.MethodPAW, MinRows: 10, SampleRows: 6_000, Delta: delta})
	if err != nil {
		log.Fatal(err)
	}
	q := future[0].Box
	fmt.Printf("\nquery %v scans partitions %v\n", q, l.PartitionsFor(q))
}
