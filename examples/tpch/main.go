// TPC-H robustness study: sweeps the workload-variance threshold δ and shows
// how PAW's advantage over the Qd-tree grows with drift (a miniature of the
// paper's Figure 19), then demonstrates δ estimation for the common case
// where the real δ is unknown (§IV-E).
package main

import (
	"fmt"
	"log"

	"paw"
)

func main() {
	data := paw.GenerateTPCH(120_000, 11).Project(4).Normalize()
	domain := data.Domain()
	hist := paw.UniformWorkload(domain, 50, 12)

	fmt.Println("δ (% of domain)   Qd-tree   PAW      advantage")
	for _, deltaPct := range []float64{0.1, 0.5, 1, 2, 5, 10} {
		delta := paw.FractionOfDomain(domain, deltaPct/100)
		future := paw.FutureWorkload(hist, delta, 1, 13)

		qd, err := paw.Build(data, hist, paw.Options{
			Method: paw.MethodQdTree, MinRows: 20, SampleRows: 12_000,
		})
		if err != nil {
			log.Fatal(err)
		}
		pw, err := paw.Build(data, hist, paw.Options{
			Method: paw.MethodPAW, MinRows: 20, SampleRows: 12_000, Delta: delta,
		})
		if err != nil {
			log.Fatal(err)
		}
		qdRatio := 100 * qd.ScanRatio(future.Boxes(), nil)
		pwRatio := 100 * pw.ScanRatio(future.Boxes(), nil)
		fmt.Printf("%-17.1f %-9.3f %-8.3f %.1fx\n", deltaPct, qdRatio, pwRatio, qdRatio/pwRatio)
	}

	// Unknown δ: estimate it from the history alone (§IV-E). Simulate a
	// 100-query history whose second half drifted by at most 1.5%.
	realDelta := paw.FractionOfDomain(domain, 0.015)
	drifted := paw.FutureWorkload(hist, realDelta, 1, 14)
	fullHistory := append(hist.Clone(), drifted...)
	for i := range fullHistory {
		fullHistory[i].Seq = int64(i) // timestamps: drifted half is newer
	}
	est, err := paw.EstimateDelta(fullHistory)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nreal δ = %.4f, estimated δ' = %.4f (from the history alone)\n", realDelta, est)

	l, err := paw.Build(data, fullHistory, paw.Options{
		Method: paw.MethodPAW, MinRows: 20, SampleRows: 12_000, Delta: est, DataAwareRefine: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	nextWeek := paw.FutureWorkload(fullHistory, realDelta, 1, 15)
	fmt.Printf("PAW-unknown on next week's workload: %.3f%% scan ratio, %d partitions\n",
		100*l.ScanRatio(nextWeek.Boxes(), nil), l.NumPartitions())
}
