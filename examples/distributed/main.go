// Distributed mode: spins up the Fig. 4 architecture as real TCP servers —
// four workers hosting partitions of a PAW layout, a master owning the
// routing metadata, and a SQL client — all in one process over loopback.
// The master also records every routed range into a query log, the
// production source of the "historical workload" for the next layout build.
//
// The placement is replicated under a storage budget (the §V-B tuner
// direction): hot partitions get a second copy on another worker, and the
// demo kills a worker mid-run to show the master failing scans over to the
// surviving replicas.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"time"

	"paw"
	"paw/internal/blockstore"
	"paw/internal/dist"
	"paw/internal/layout"
	"paw/internal/obs"
	"paw/internal/placement"
	"paw/internal/router"
	"paw/internal/trace"
	"paw/internal/workload"
)

func main() {
	metrics := flag.String("metrics", "", "serve /metrics, /traces, /healthz, /readyz and /debug/pprof on this address (e.g. :9090); empty disables")
	hold := flag.Bool("hold", false, "keep the cluster running after the demo queries (ctrl-C to exit)")
	traceOut := flag.String("trace-out", "", "write the per-query JSONL cost records to this file")
	tracesDump := flag.String("traces-dump", "", "after the demo, write the /traces JSON document (recent traces + exemplars) to this file")
	flag.Parse()

	const workers = 4
	data := paw.GenerateTPCH(120_000, 61)
	hist := paw.UniformWorkload(data.Domain(), 50, 62)
	l, err := paw.Build(data, hist, paw.Options{
		Method: paw.MethodPAW, MinRows: 20, SampleRows: 12_000,
		Delta: paw.FractionOfDomain(data.Domain(), 0.0005),
	})
	if err != nil {
		log.Fatal(err)
	}
	store := blockstore.Materialize(l, data, blockstore.Config{})

	// Workload-aware placement (future work §VII-2), then replicas for the
	// hottest partitions under a storage budget of half the dataset: the
	// spare copies are what the master fails over to when a worker dies.
	assign := placement.Optimize(l, hist.Boxes(), workers)
	var totalBytes int64
	for _, p := range l.Parts {
		totalBytes += p.Bytes()
	}
	rep := placement.Replicate(l, hist.Boxes(), workers, assign, totalBytes/2)
	var copies int
	for _, ws := range rep {
		copies += len(ws) - 1
	}
	perWorker := make([][]layout.ID, workers)
	for id, ws := range rep {
		for _, w := range ws {
			perWorker[w] = append(perWorker[w], id)
		}
	}
	fleet := make([]*dist.Worker, workers)
	addrs := make([]string, workers)
	for w := 0; w < workers; w++ {
		wk := dist.NewWorker(store, perWorker[w])
		addr, err := wk.Start("127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		defer wk.Close()
		fleet[w] = wk
		addrs[w] = addr
		fmt.Printf("worker %d: %d partitions on %s\n", w, len(perWorker[w]), addr)
	}
	fmt.Printf("replication: %d spare copies within a %.2f MB budget\n",
		copies, float64(totalBytes/2)/1e6)

	rm, err := router.NewMaster(l, data.Names())
	if err != nil {
		log.Fatal(err)
	}
	var qlog workload.Log
	rm.SetRecorder(qlog.Record)
	m, err := dist.NewMasterReplicated(rm, addrs, rep)
	if err != nil {
		log.Fatal(err)
	}
	cfg := dist.DefaultConfig()
	cfg.CallTimeout = 2 * time.Second
	cfg.Retry.BaseBackoff = 5 * time.Millisecond
	cfg.SlowQuery = 250 * time.Millisecond
	m.Configure(cfg)
	reg := obs.New()
	rm.SetMetrics(reg)
	m.SetMetrics(reg)
	// Trace every query: the demo is tiny, and the dump/exemplars are the
	// point. Production would sample (e.g. SampleEvery: 100).
	tracer := trace.New(trace.Config{SampleEvery: 1})
	m.SetTracer(tracer)
	if *traceOut != "" {
		cf, err := os.Create(*traceOut)
		if err != nil {
			log.Fatal(err)
		}
		costLog := trace.NewCostLog(cf)
		m.SetCostLog(costLog)
		defer costLog.Close()
	}
	if *metrics != "" {
		srv, err := obs.ServeWith(*metrics, reg, map[string]http.Handler{
			"/traces":  trace.Handler(tracer),
			"/healthz": obs.Healthz(),
			"/readyz":  obs.Readyz(m.Ready),
		})
		if err != nil {
			log.Fatal(err)
		}
		defer srv.Close()
		fmt.Printf("telemetry: curl http://%s/metrics (also /traces, /healthz, /readyz)\n", srv.Addr())
	}
	maddr, err := m.Start("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer m.Close()
	fmt.Printf("master: %s (metadata %d bytes)\n\n", maddr, rm.MemoryFootprint())

	client, err := dist.Dial(maddr)
	if err != nil {
		log.Fatal(err)
	}
	defer client.Close()
	for _, sql := range []string{
		"SELECT * FROM lineitem WHERE l_quantity >= 10 AND l_quantity <= 20",
		"SELECT * FROM lineitem WHERE l_shipdate BETWEEN 100 AND 300 AND l_discount >= 0.05",
		"SELECT * FROM lineitem WHERE l_quantity <= 2 OR l_quantity >= 49",
	} {
		resp, err := client.Query(sql)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s\n  -> %d rows from %d partitions (%.2f MB over the wire-side scans)\n",
			sql, resp.Rows, resp.PartitionsScanned, float64(resp.BytesScanned)/1e6)
	}

	// EXPLAIN ANALYZE: force a trace and render the span tree — routing,
	// per-range scatter, per-worker RPCs, and each worker's per-partition
	// scan spans with bytes read/skipped and the encoding mix.
	fmt.Println("\nEXPLAIN ANALYZE SELECT * FROM lineitem WHERE l_quantity >= 30 AND l_quantity <= 35")
	eresp, err := client.Explain(context.Background(),
		"SELECT * FROM lineitem WHERE l_quantity >= 30 AND l_quantity <= 35")
	if err != nil {
		log.Fatal(err)
	}
	trace.WriteTree(os.Stdout, eresp.TraceID, eresp.Spans)

	// Failover demo: kill one worker and re-run a query from a client that
	// opted into partial results. Partitions whose primary died are scanned
	// on their replicas; partitions the budget left single-copy are reported
	// as failed instead of sinking the whole query.
	fmt.Printf("\nkilling worker 0 (%s) ...\n", addrs[0])
	fleet[0].Close()
	survivor, err := dist.Dial(maddr)
	if err != nil {
		log.Fatal(err)
	}
	defer survivor.Close()
	survivor.SetAllowPartial(true)
	resp, err := survivor.Query("SELECT * FROM lineitem WHERE l_quantity >= 10 AND l_quantity <= 20")
	if err != nil {
		log.Fatal(err)
	}
	snap := reg.Snapshot()
	fmt.Printf("  -> %d rows from %d partitions; %d scans failed over, %d redials, %d breaker trips\n",
		resp.Rows, resp.PartitionsScanned, snap.Counter(dist.MetricFailovers),
		snap.Counter(dist.MetricRedials), snap.Counter(dist.MetricBreakerTrips))
	if resp.Partial {
		fmt.Printf("  -> partial: %d partition(s) had no surviving replica: %v\n",
			len(resp.FailedPartitions), resp.FailedPartitions)
	} else {
		fmt.Println("  -> exact: every lost partition had a replica")
	}
	fmt.Printf("\nquery log captured %d range queries for the next rebuild\n", qlog.Len())

	if *tracesDump != "" {
		df, err := os.Create(*tracesDump)
		if err != nil {
			log.Fatal(err)
		}
		if err := trace.WriteJSON(df, tracer); err != nil {
			log.Fatal(err)
		}
		if err := df.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("traces dump (the /traces document) written to %s\n", *tracesDump)
	}

	if *hold {
		fmt.Println("holding cluster open; inspect /metrics, ctrl-C to exit")
		select {}
	}
}
