// OSM plugin study: builds PAW over a skewed 2-d point cloud (the paper's
// OpenStreetMap scenario) and demonstrates both §V plugin modules — precise
// descriptors and the storage tuner — reproducing the spirit of Figure 23.
package main

import (
	"fmt"
	"log"

	"paw"
)

func main() {
	data := paw.GenerateOSM(100_000, 12, 21).Normalize()
	domain := data.Domain()
	hist := paw.SkewedWorkload(domain, 50, 22)
	delta := paw.FractionOfDomain(domain, 0.01)
	future := paw.FutureWorkload(hist, delta, 1, 23)

	l, err := paw.Build(data, hist, paw.Options{
		Method: paw.MethodPAW, MinRows: 16, SampleRows: 10_000, Delta: delta,
	})
	if err != nil {
		log.Fatal(err)
	}
	base := 100 * l.ScanRatio(future.Boxes(), nil)
	fmt.Printf("PAW on skewed OSM: %d partitions, base scan ratio %.3f%%\n", l.NumPartitions(), base)

	// Plugin 1 (§V-A): precise descriptors — N covering MBRs per partition,
	// extracted R-tree style, held in master memory for extra pruning.
	fmt.Println("\nprecise descriptors:")
	for _, nmbr := range []int{1, 3, 10} {
		mem, err := paw.InstallPreciseDescriptors(l, data, nmbr)
		if err != nil {
			log.Fatal(err)
		}
		ratio := 100 * l.ScanRatio(future.Boxes(), nil)
		fmt.Printf("  Nmbr=%-3d scan ratio %.3f%%  (master memory +%d bytes)\n", nmbr, ratio, mem)
	}

	// Plugin 2 (§V-B): the storage tuner — spend spare disk space on
	// redundant partitions chosen greedily by gain (Eq. 5).
	fmt.Println("\nstorage tuner:")
	worstCase := hist.Extend(delta).Boxes()
	for _, frac := range []float64{0.01, 0.05, 0.20} {
		budget := int64(float64(data.TotalBytes()) * frac)
		extras := paw.SelectExtraPartitions(l, data, worstCase, budget)
		ratio := 100 * l.ScanRatio(future.Boxes(), extras)
		var used int64
		for _, e := range extras {
			used += e.Bytes()
		}
		fmt.Printf("  %4.0f%% spare space: %d extra partitions (%.1f%% used), scan ratio %.3f%%\n",
			frac*100, len(extras), 100*float64(used)/float64(data.TotalBytes()), ratio)
	}

	fmt.Printf("\ntheoretical lower bound: %.3f%%\n", 100*paw.LowerBoundRatio(data, future.Boxes()))
}
