// SQL routing: drives the full Fig. 4 query framework — SQL statements are
// rewritten into disjoint range queries, routed by the master node to
// partition-ID lists, and executed on the simulated 4-worker cluster with
// row-group pruning and caching.
package main

import (
	"fmt"
	"log"
	"time"

	"paw"
	"paw/internal/blockstore"
	"paw/internal/cluster"
)

func main() {
	data := paw.GenerateTPCH(120_000, 31)
	hist := paw.UniformWorkload(data.Domain(), 50, 32)
	l, err := paw.Build(data, hist, paw.Options{
		Method: paw.MethodPAW, MinRows: 20, SampleRows: 12_000,
		Delta: paw.FractionOfDomain(data.Domain(), 0.0001),
	})
	if err != nil {
		log.Fatal(err)
	}
	master, err := paw.NewMaster(l, data.Names())
	if err != nil {
		log.Fatal(err)
	}
	store := blockstore.Materialize(l, data, blockstore.Config{})
	clus := cluster.New(cluster.Defaults(), store, l)
	fmt.Printf("%s; master metadata: %d bytes\n\n", l, master.MemoryFootprint())

	statements := []string{
		"SELECT * FROM lineitem WHERE l_quantity >= 10 AND l_quantity <= 20",
		"SELECT * FROM lineitem WHERE l_shipdate BETWEEN 100 AND 200 AND l_discount >= 0.05",
		"SELECT * FROM lineitem WHERE l_quantity <= 5 OR l_quantity >= 45",
		"SELECT * FROM lineitem WHERE NOT (l_tax > 0.04)",
		"SELECT * FROM lineitem WHERE l_extendedprice >= 90000 AND l_suppkey <= 1000",
	}
	for _, stmt := range statements {
		plan, err := master.RouteSQL(stmt)
		if err != nil {
			log.Fatal(err)
		}
		ids := plan.PartitionIDs()
		var rows int
		var scanned int64
		var elapsed time.Duration
		for _, rp := range plan.Ranges {
			res, err := clus.Query(rp.Range, rp.Parts)
			if err != nil {
				log.Fatal(err)
			}
			rows += res.Rows
			scanned += res.BytesScanned
			if res.Elapsed > elapsed {
				elapsed = res.Elapsed
			}
		}
		fmt.Printf("%s\n  -> %d range(s), %d/%d partitions, %d rows, %.2f MB read, %v simulated\n\n",
			stmt, len(plan.Ranges), len(ids), l.NumPartitions(), rows,
			float64(scanned)/1e6, elapsed.Round(time.Microsecond))
	}

	// Verify one result against a direct scan of the dataset.
	plan, err := master.RouteWhere("l_quantity >= 10 AND l_quantity <= 20")
	if err != nil {
		log.Fatal(err)
	}
	var viaCluster int
	for _, rp := range plan.Ranges {
		res, err := clus.Query(rp.Range, rp.Parts)
		if err != nil {
			log.Fatal(err)
		}
		viaCluster += res.Rows
	}
	direct := data.CountInBox(plan.Ranges[0].Range, nil)
	fmt.Printf("cross-check: cluster returned %d rows, direct scan %d rows, match=%v\n",
		viaCluster, direct, viaCluster == direct)
}
