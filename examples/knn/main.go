// KNN on partition layouts: the paper's first future-work item (§VII) —
// answering k-nearest-neighbour queries through the same partition
// descriptors used for range queries, with best-first MINDIST search over
// partitions and SMA-based row-group pruning inside them.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"paw"
	"paw/internal/blockstore"
	"paw/internal/knn"
)

func main() {
	// A skewed 2-d point cloud (the OSM stand-in) partitioned by PAW.
	data := paw.GenerateOSM(100_000, 10, 51).Normalize()
	hist := paw.SkewedWorkload(data.Domain(), 40, 52)
	l, err := paw.Build(data, hist, paw.Options{
		Method: paw.MethodPAW, MinRows: 16, SampleRows: 10_000,
		Delta: paw.FractionOfDomain(data.Domain(), 0.01), DataAwareRefine: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	store := blockstore.Materialize(l, data, blockstore.Config{GroupRows: 256})
	fmt.Printf("%s\n\n", l)

	rng := rand.New(rand.NewSource(53))
	var totalBytes int64
	var totalParts int
	const queries = 5
	for i := 0; i < queries; i++ {
		q := paw.Point{rng.Float64(), rng.Float64()}
		res, st, err := knn.Search(l, store, q, 10)
		if err != nil {
			log.Fatal(err)
		}
		totalBytes += st.BytesScanned
		totalParts += st.PartitionsScanned
		fmt.Printf("10-NN of (%.3f, %.3f): nearest at distance %.5f, farthest %.5f\n",
			q[0], q[1], res[0].Dist, res[len(res)-1].Dist)
		fmt.Printf("  scanned %d/%d partitions, %d row groups (%d pruned), %.1f KB of %.1f MB\n",
			st.PartitionsScanned, l.NumPartitions(), st.GroupsScanned, st.GroupsSkipped,
			float64(st.BytesScanned)/1e3, float64(data.TotalBytes())/1e6)
	}
	fmt.Printf("\naverage per query: %.2f%% of the dataset read, %.1f partitions touched\n",
		100*float64(totalBytes)/float64(queries)/float64(data.TotalBytes()),
		float64(totalParts)/queries)
}
