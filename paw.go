// Package paw is a from-scratch Go implementation of PAW — "Data
// Partitioning Meets Workload Variance" (Li, Yiu, Chan; ICDE 2022) — a
// workload-aware data-partitioning technique for block-based storage that is
// robust to future query workloads deviating from the historical workload.
//
// The package is a facade over the implementation packages:
//
//   - Build constructs partition layouts with PAW, the greedy Qd-tree
//     baseline, or a k-d tree baseline.
//   - EstimateDelta implements the paper's §IV-E heuristic for unknown
//     workload-variance thresholds.
//   - InstallPreciseDescriptors and SelectExtraPartitions are the §V plugin
//     modules (precise descriptors, storage tuner).
//   - NewMaster builds the Fig. 4 master node: SQL → range queries →
//     partition-ID lists.
//   - GenerateTPCH / GenerateOSM and the workload generators reproduce the
//     paper's evaluation datasets and query workloads at laptop scale.
//
// A minimal end-to-end use:
//
//	data := paw.GenerateTPCH(600_000, 1)
//	hist := paw.UniformWorkload(data.Domain(), 50, 2)
//	l, err := paw.Build(data, hist, paw.Options{
//		Method:  paw.MethodPAW,
//		MinRows: 1000,
//		Delta:   paw.FractionOfDomain(data.Domain(), 0.01),
//	})
//	ids := l.PartitionsFor(someQuery)
package paw

import (
	"fmt"
	"io"

	"paw/internal/core"
	"paw/internal/dataset"
	"paw/internal/descriptor"
	"paw/internal/geom"
	"paw/internal/kdtree"
	"paw/internal/layout"
	"paw/internal/qdtree"
	"paw/internal/router"
	"paw/internal/tuner"
	"paw/internal/workload"
)

// Re-exported core types. Aliases keep the implementation packages internal
// while letting callers hold and pass the real types.
type (
	// Dataset is a column-major numeric table (see GenerateTPCH).
	Dataset = dataset.Dataset
	// Workload is an ordered collection of range queries.
	Workload = workload.Workload
	// Query is one range query of a workload.
	Query = workload.Query
	// Layout is a sealed (and, after routing, materialised) partition
	// layout.
	Layout = layout.Layout
	// Partition is one physical partition of a layout.
	Partition = layout.Partition
	// Extras are the storage tuner's redundant partitions.
	Extras = layout.Extras
	// Box is a closed axis-aligned range (query region or descriptor).
	Box = geom.Box
	// Point is a d-dimensional point.
	Point = geom.Point
	// Master is the query-routing master node (Fig. 4).
	Master = router.Master
	// Plan is a routed query plan.
	Plan = router.Plan
)

// Method selects the partitioning algorithm.
type Method string

// Supported partitioning methods.
const (
	// MethodPAW is the paper's contribution (§IV).
	MethodPAW Method = "paw"
	// MethodQdTree is the greedy Qd-tree baseline (Yang et al., 2020).
	MethodQdTree Method = "qd-tree"
	// MethodKdTree is the data-aware k-d tree baseline.
	MethodKdTree Method = "kd-tree"
)

// Options configures Build.
type Options struct {
	// Method selects the algorithm; defaults to MethodPAW.
	Method Method
	// MinRows is the minimum partition size bmin in rows of the build
	// input (the paper's 128 MB block constraint, expressed in rows).
	MinRows int
	// Delta is the workload-variance threshold δ in absolute units of the
	// query space (PAW only). Use FractionOfDomain or EstimateDelta to
	// derive it. Zero reproduces the exact-workload special case (§VI-G).
	Delta float64
	// Alpha is PAW's Ψ-policy constant (Eq. 4); defaults to 8.
	Alpha float64
	// DataAwareRefine enables PAW's §IV-E refinement of query-free leaves.
	DataAwareRefine bool
	// DisableMultiGroup restricts PAW to rectangular splits (ablation).
	DisableMultiGroup bool
	// Parallelism bounds the construction worker pool shared by all
	// methods: 0 (the default) selects runtime.GOMAXPROCS(0), 1 forces a
	// serial build. Construction is deterministic at any setting — the
	// parallel build produces a layout identical to the serial one — so
	// Parallelism only trades build time for cores.
	Parallelism int
	// SampleRows builds the logical layout on a random sample of this many
	// rows (0 = use every row), mirroring the paper's protocol (§VI-A).
	// MinRows applies to the sample.
	SampleRows int
	// SampleSeed drives sample selection.
	SampleSeed int64
	// Route controls whether the full dataset is routed through the new
	// layout immediately (default true via RouteAfterBuild; set
	// SkipRouting to leave partition sizes unset).
	SkipRouting bool
}

// Build constructs a partition layout for the historical workload over the
// dataset and, unless opts.SkipRouting is set, routes the full dataset
// through it so partition sizes and costs are available.
func Build(data *Dataset, hist Workload, opts Options) (*Layout, error) {
	if data == nil || data.NumRows() == 0 {
		return nil, fmt.Errorf("paw: empty dataset")
	}
	if opts.MinRows < 1 {
		return nil, fmt.Errorf("paw: MinRows must be >= 1, got %d", opts.MinRows)
	}
	rows := allRows(data.NumRows())
	if opts.SampleRows > 0 && opts.SampleRows < data.NumRows() {
		rows = data.Sample(opts.SampleRows, opts.SampleSeed)
	}
	domain := data.Domain()
	var l *Layout
	switch opts.Method {
	case MethodPAW, "":
		l = core.Build(data, rows, domain, hist, core.Params{
			MinRows:           opts.MinRows,
			Alpha:             opts.Alpha,
			Delta:             opts.Delta,
			DataAwareRefine:   opts.DataAwareRefine,
			DisableMultiGroup: opts.DisableMultiGroup,
			Parallelism:       opts.Parallelism,
		})
	case MethodQdTree:
		l = qdtree.Build(data, rows, domain, hist.Boxes(), qdtree.Params{MinRows: opts.MinRows, Parallelism: opts.Parallelism})
	case MethodKdTree:
		l = kdtree.Build(data, rows, domain, kdtree.Params{MinRows: opts.MinRows, Parallelism: opts.Parallelism})
	default:
		return nil, fmt.Errorf("paw: unknown method %q", opts.Method)
	}
	if !opts.SkipRouting {
		l.Route(data)
	}
	return l, nil
}

// BeamOptions configures BuildBeam.
type BeamOptions struct {
	Options
	// Width is the beam width (candidate partial layouts kept); Branch is
	// the number of split alternatives expanded per node. Both default
	// to 1, which degenerates to greedy construction.
	Width, Branch int
}

// BuildBeam constructs a PAW layout with the beam-search strategy the paper
// sketches as future work (§IV-D): it explores Width candidate layouts in
// parallel and keeps the cheaper of {best beam result, greedy result}, so
// quality is never worse than Build at MethodPAW — only build time grows.
func BuildBeam(data *Dataset, hist Workload, opts BeamOptions) (*Layout, error) {
	if data == nil || data.NumRows() == 0 {
		return nil, fmt.Errorf("paw: empty dataset")
	}
	if opts.MinRows < 1 {
		return nil, fmt.Errorf("paw: MinRows must be >= 1, got %d", opts.MinRows)
	}
	rows := allRows(data.NumRows())
	if opts.SampleRows > 0 && opts.SampleRows < data.NumRows() {
		rows = data.Sample(opts.SampleRows, opts.SampleSeed)
	}
	l := core.BuildBeam(data, rows, data.Domain(), hist, core.BeamParams{
		Params: core.Params{
			MinRows:           opts.MinRows,
			Alpha:             opts.Alpha,
			Delta:             opts.Delta,
			DataAwareRefine:   opts.DataAwareRefine,
			DisableMultiGroup: opts.DisableMultiGroup,
			Parallelism:       opts.Parallelism,
		},
		Width:  opts.Width,
		Branch: opts.Branch,
	})
	if !opts.SkipRouting {
		l.Route(data)
	}
	return l, nil
}

// EstimateDelta estimates the workload-variance threshold δ from the
// historical workload alone (§IV-E): the workload is split into two halves
// by timestamp and the minimal δ′ making them δ′-similar is returned.
func EstimateDelta(hist Workload) (float64, error) {
	return workload.EstimateDelta(hist)
}

// MinAvgDelta returns the minimal average matched distance between the
// workloads (an alternative similarity measure to Definition 2's bottleneck;
// the paper leaves such alternatives as future work), plus the matching.
func MinAvgDelta(hist, future Workload) (float64, []int, error) {
	return workload.MinAvgDelta(hist, future)
}

// TuneAlpha selects the Ψ-policy constant α automatically by holdout
// validation on the historical workload (the paper's third future-work
// question). Pass the result as Options.Alpha.
func TuneAlpha(data *Dataset, hist Workload, opts Options) (float64, error) {
	if data == nil || data.NumRows() == 0 {
		return 0, fmt.Errorf("paw: empty dataset")
	}
	rows := allRows(data.NumRows())
	if opts.SampleRows > 0 && opts.SampleRows < data.NumRows() {
		rows = data.Sample(opts.SampleRows, opts.SampleSeed)
	}
	return core.TunePolicy(data, rows, data.Domain(), hist, core.Params{
		MinRows:     opts.MinRows,
		Delta:       opts.Delta,
		Parallelism: opts.Parallelism,
	}, nil)
}

// SaveLayout serialises a layout's routing metadata (descriptors, partition
// sizes, precise descriptors) so a master can reload it without rebuilding.
func SaveLayout(l *Layout, w io.Writer) error { return l.Encode(w) }

// LoadLayout reloads a layout saved with SaveLayout.
func LoadLayout(r io.Reader) (*Layout, error) { return layout.Decode(r) }

// AreSimilar tests Definition 2: whether hist and future are delta-similar.
func AreSimilar(hist, future Workload, delta float64) (bool, error) {
	return workload.AreSimilar(hist, future, delta)
}

// FractionOfDomain converts a relative threshold (e.g. the paper's default
// δ = 1% of the domain length) into the absolute units Build expects, using
// the first dimension's extent.
func FractionOfDomain(domain Box, frac float64) float64 {
	return frac * (domain.Hi[0] - domain.Lo[0])
}

// InstallPreciseDescriptors attaches the §V-A plugin to the layout: every
// partition gets nmbr covering MBRs extracted R-tree-style from its records.
// Returns the master-memory overhead in bytes.
func InstallPreciseDescriptors(l *Layout, data *Dataset, nmbr int) (int64, error) {
	return descriptor.Install(l, data, descriptor.AllRows(data.NumRows()), nmbr)
}

// SelectExtraPartitions runs the §V-B storage tuner: redundant partitions
// are selected greedily by gain (Eq. 5) within the byte budget. The returned
// extras plug into Layout.QueryCost and Master.SetExtras.
func SelectExtraPartitions(l *Layout, data *Dataset, queries []Box, budgetBytes int64) Extras {
	return tuner.Select(l, data, queries, budgetBytes)
}

// NewMaster wires the routed layout with a SQL schema (column names in
// dimension order), yielding the Fig. 4 master node.
func NewMaster(l *Layout, columns []string) (*Master, error) {
	return router.NewMaster(l, columns)
}

// GenerateTPCH generates the scaled TPC-H lineitem stand-in: 8 uniform
// numeric attributes with lineitem-like domains.
func GenerateTPCH(rows int, seed int64) *Dataset { return dataset.TPCHLike(rows, seed) }

// GenerateOSM generates the scaled OSM stand-in: a skewed 2-d point cloud.
func GenerateOSM(rows, clusters int, seed int64) *Dataset {
	return dataset.OSMLike(rows, clusters, seed)
}

// UniformWorkload generates n queries with uniform centers and the paper's
// default maximal range (γ = 10% of the domain).
func UniformWorkload(domain Box, n int, seed int64) Workload {
	return workload.Uniform(domain, workload.Defaults(n, seed))
}

// SkewedWorkload generates n queries from a Gaussian mixture with the
// paper's default parameters (#C = 10 centers, σ = 10% of γ).
func SkewedWorkload(domain Box, n int, seed int64) Workload {
	return workload.Skewed(domain, workload.Defaults(n, seed))
}

// FutureWorkload derives a δ-similar future workload: ratio perturbed copies
// of every historical query, each bound moving at most delta.
func FutureWorkload(hist Workload, delta float64, ratio int, seed int64) Workload {
	return workload.Future(hist, delta, ratio, seed)
}

// LowerBoundRatio returns LBCost as a fraction of the dataset size: the
// theoretical floor no layout can beat (scan exactly the result).
func LowerBoundRatio(data *Dataset, queries []Box) float64 {
	return layout.LowerBoundRatio(data, queries)
}

func allRows(n int) []int {
	rows := make([]int, n)
	for i := range rows {
		rows[i] = i
	}
	return rows
}
