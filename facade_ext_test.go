package paw

// Tests for the facade's future-work extensions: beam-search construction,
// the Hungarian similarity measure, α auto-tuning and layout persistence.

import (
	"bytes"
	"testing"
)

func TestFacadeBuildBeam(t *testing.T) {
	data := GenerateTPCH(8_000, 41).Project(2).Normalize()
	hist := UniformWorkload(data.Domain(), 15, 42)
	delta := FractionOfDomain(data.Domain(), 0.01)
	l, err := BuildBeam(data, hist, BeamOptions{
		Options: Options{MinRows: 20, SampleRows: 1_600, Delta: delta},
		Width:   3, Branch: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if l.Method != "paw-beam" {
		t.Errorf("method = %q", l.Method)
	}
	if err := l.Validate(data, 1); err != nil {
		t.Error(err)
	}
	// The beam result never loses to greedy under the construction model;
	// on routed bytes allow small slack.
	greedy, err := Build(data, hist, Options{MinRows: 20, SampleRows: 1_600, Delta: delta})
	if err != nil {
		t.Fatal(err)
	}
	ext := hist.Extend(delta).Boxes()
	if b, g := l.WorkloadCost(ext, nil), greedy.WorkloadCost(ext, nil); float64(b) > float64(g)*1.05 {
		t.Errorf("beam cost %d above greedy %d", b, g)
	}
	// Validation errors propagate.
	if _, err := BuildBeam(nil, hist, BeamOptions{Options: Options{MinRows: 1}}); err == nil {
		t.Error("nil dataset must error")
	}
	if _, err := BuildBeam(data, hist, BeamOptions{}); err == nil {
		t.Error("MinRows 0 must error")
	}
}

func TestFacadeMinAvgDelta(t *testing.T) {
	data := GenerateTPCH(500, 43).Project(2).Normalize()
	hist := UniformWorkload(data.Domain(), 12, 44)
	fut := FutureWorkload(hist, 0.02, 1, 45)
	avg, match, err := MinAvgDelta(hist, fut)
	if err != nil {
		t.Fatal(err)
	}
	if avg < 0 || avg > 0.02+1e-9 {
		t.Errorf("avg = %v, want in [0, 0.02]", avg)
	}
	if len(match) != len(fut) {
		t.Errorf("match length %d", len(match))
	}
}

func TestFacadeTuneAlpha(t *testing.T) {
	data := GenerateTPCH(6_000, 46).Project(2).Normalize()
	hist := UniformWorkload(data.Domain(), 24, 47)
	alpha, err := TuneAlpha(data, hist, Options{
		MinRows: 15, SampleRows: 1_200,
		Delta: FractionOfDomain(data.Domain(), 0.01),
	})
	if err != nil {
		t.Fatal(err)
	}
	if alpha <= 1 {
		t.Errorf("tuned α = %v", alpha)
	}
	// The tuned α builds successfully.
	if _, err := Build(data, hist, Options{
		MinRows: 15, SampleRows: 1_200, Alpha: alpha,
		Delta: FractionOfDomain(data.Domain(), 0.01),
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := TuneAlpha(nil, hist, Options{MinRows: 1}); err == nil {
		t.Error("nil dataset must error")
	}
}

func TestFacadeSaveLoadLayout(t *testing.T) {
	data := GenerateTPCH(5_000, 48).Project(2).Normalize()
	hist := UniformWorkload(data.Domain(), 10, 49)
	l, err := Build(data, hist, Options{MinRows: 20, SampleRows: 1_000, Delta: FractionOfDomain(data.Domain(), 0.01)})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := SaveLayout(l, &buf); err != nil {
		t.Fatal(err)
	}
	got, err := LoadLayout(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumPartitions() != l.NumPartitions() || got.Method != l.Method {
		t.Errorf("reload mismatch: %s vs %s", got, l)
	}
	q := hist[0].Box
	if got.QueryCost(q, nil) != l.QueryCost(q, nil) {
		t.Error("reloaded layout costs differently")
	}
}
