module paw

go 1.22
