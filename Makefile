# Tier-1 verification plus the concurrency and performance gates added with
# the parallel construction substrate (internal/parbuild), the sealed
# routing index (internal/rtree + layout batch costing), and the
# paper-invariant oracle suite (internal/invariant + internal/sim).

GO ?= go

.PHONY: check build vet test race chaos fuzz bench-construction bench-routing bench-scan bench-serving bench-drift bench-rebalance obs-demo trace-demo

# check is the full tier-1 gate: build, vet, tests, and the race detector
# over every package that runs concurrent construction or routing code.
check: build vet test race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# race runs the concurrent builders (PAW, Qd-tree, k-d tree, beam, parbuild),
# the concurrent routing/costing paths (layout batch sweeps, router, tuner),
# the benchmark harness, the invariant/simulation suites, the online
# reorganization path (ingest, adaptive baseline, drift monitor + migration),
# the elastic membership substrate (failure detector, ring placement,
# rebalance planner) and the tracing substrate (spans assemble across scatter
# goroutines) under the race detector in short mode. Any new fan-out point
# must pass this before merging.
race:
	$(GO) test -race -short ./internal/core/... ./internal/qdtree/... ./internal/kdtree/... ./internal/parbuild/... ./internal/layout/... ./internal/router/... ./internal/tuner/... ./internal/bench/... ./internal/invariant/... ./internal/sim/... ./internal/obs/... ./internal/dist/... ./internal/faultnet/... ./internal/serve/... ./internal/colstore/... ./internal/blockstore/... ./internal/adaptive/... ./internal/ingest/... ./internal/drift/... ./internal/trace/... ./internal/membership/...

# chaos runs the deterministic fault-injection suite (DESIGN.md §10) under
# the race detector: every TestChaos* scenario drives the distributed path
# through faultnet scripts on a fixed seed matrix and asserts the intended
# recovery — bounded retry+backoff, replica failover, breaker trip and
# probe, deadline expiry without goroutine leaks, and partial results. The
# elastic-membership scenarios (TestChaosRebalance*, TestChaosJoin*,
# TestChaosMembership*) crash workers mid-rebalance and mid-join and assert
# clean aborts with exact answers throughout (DESIGN.md §15).
chaos:
	$(GO) test -race -count=1 -run 'TestChaos' ./internal/dist/... ./internal/faultnet/...

# fuzz gives every fuzz target a short budget: the invariant harness
# (builders must satisfy the oracles on fuzzed scenarios), the δ-estimation
# differential (bottleneck matching vs. brute force), the routing/codec
# differentials in internal/layout, the scan-kernel differential (vectorized
# kernels vs naive scan across every encoding, v1+v2 codecs), and the drift
# differential (fuzzed query streams against a live cluster with the drift
# controller attached — every answer must match the static-layout oracle,
# before, during and after any migration), and the membership differential
# (fuzzed join/leave/crash/tick/rebalance sequences against a live elastic
# cluster — every answered query must match the dataset oracle through the
# churn).
fuzz:
	$(GO) test ./internal/sim -run FuzzInvariants -fuzz FuzzInvariants -fuzztime 30s
	$(GO) test ./internal/workload -run FuzzMinimalDelta -fuzz FuzzMinimalDelta -fuzztime 30s
	$(GO) test ./internal/layout -run FuzzRoutingDifferential -fuzz FuzzRoutingDifferential -fuzztime 30s
	$(GO) test ./internal/colstore -run FuzzScanDifferential -fuzz FuzzScanDifferential -fuzztime 30s
	$(GO) test ./internal/drift -run FuzzDriftDifferential -fuzz FuzzDriftDifferential -fuzztime 30s
	$(GO) test ./internal/dist -run FuzzMembershipDifferential -fuzz FuzzMembershipDifferential -fuzztime 30s

# bench-construction regenerates BENCH_construction.json: construction
# ns/op, allocs/op and parallel speedup at 1/2/4/8 workers, tracked across
# PRs.
bench-construction:
	$(GO) run ./cmd/pawbench -construction BENCH_construction.json

# bench-routing regenerates BENCH_routing.json: ns/query, queries/sec and
# allocs/query for linear vs indexed vs batched range routing and point
# routing on a sealed 5k-partition layout, tracked across PRs.
bench-routing:
	$(GO) run ./cmd/pawbench -routing BENCH_routing.json

# bench-scan regenerates BENCH_scan.json: vectorized columnar scan kernels vs
# the naive reference (MB/s, rows/s, bytes decoded vs skipped, allocs/op,
# encoded-vs-naive speedup per selectivity), tracked across PRs.
bench-scan:
	$(GO) run ./cmd/pawbench -scan BENCH_scan.json

# bench-serving regenerates BENCH_serving.json: closed-loop qps, p50/p99 and
# the saturation point of the serving front-end over an in-process cluster,
# for the multiplexed binary transport vs the legacy gob baseline (pipeline
# depth sweep on one connection plus a many-clients sweep), tracked across
# PRs.
bench-serving:
	$(GO) run ./cmd/pawbench -serving BENCH_serving.json

# bench-drift regenerates BENCH_drift.json: the drifting-workload scenario
# family played against live clusters with the drift controller attached —
# trigger fidelity per scenario, cost-regression recovery time, queries
# served during migration, and the offline-rebuild / adaptive (AQWA-style)
# baselines, tracked across PRs.
bench-drift:
	$(GO) run ./cmd/pawbench -drift BENCH_drift.json

# bench-rebalance regenerates BENCH_rebalance.json: the elastic-membership
# lifecycle on a live cluster — a worker joins over the wire and the master
# rebalances with minimal movement, then the worker drains and leaves — with
# data moved vs the consistent-hash ideal and query availability through
# both events, tracked across PRs.
bench-rebalance:
	$(GO) run ./cmd/pawbench -rebalance BENCH_rebalance.json

# obs-demo exercises the telemetry pipeline end to end: build a layout with
# the metrics registry attached, emit the structured build report (phase
# timings, Alg. 1–3 split statistics, tree shape, cost decomposition) and
# render it. The phase timings must explain >= 90% of the wall time.
obs-demo:
	$(GO) run ./cmd/pawcli build -rows 40000 -report build_report.json
	$(GO) run ./cmd/pawcli stats build_report.json

# trace-demo exercises the distributed tracing pipeline end to end: the
# distributed example runs with every query traced, prints an EXPLAIN
# ANALYZE span tree, and writes the /traces JSON document (recent traces +
# latency exemplars) and the schema-versioned JSONL cost-record log — the
# artifacts the CI telemetry job uploads.
trace-demo:
	$(GO) run ./examples/distributed -trace-out cost_records.jsonl -traces-dump traces.json
