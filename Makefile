# Tier-1 verification plus the concurrency and performance gates added with
# the parallel construction substrate (internal/parbuild) and the sealed
# routing index (internal/rtree + layout batch costing).

GO ?= go

.PHONY: check build vet test race bench-construction bench-routing

# check is the full tier-1 gate: build, vet, tests, and the race detector
# over every package that runs concurrent construction or routing code.
check: build vet test race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# race runs the concurrent builders (PAW, Qd-tree, k-d tree, beam, parbuild)
# and the concurrent routing/costing paths (layout batch sweeps, router,
# tuner) under the race detector in short mode. Any new fan-out point must
# pass this before merging.
race:
	$(GO) test -race -short ./internal/core/... ./internal/qdtree/... ./internal/kdtree/... ./internal/parbuild/... ./internal/layout/... ./internal/router/... ./internal/tuner/...

# bench-construction regenerates BENCH_construction.json: construction
# ns/op, allocs/op and parallel speedup at 1/2/4/8 workers, tracked across
# PRs.
bench-construction:
	$(GO) run ./cmd/pawbench -construction BENCH_construction.json

# bench-routing regenerates BENCH_routing.json: ns/query, queries/sec and
# allocs/query for linear vs indexed vs batched range routing and point
# routing on a sealed 5k-partition layout, tracked across PRs.
bench-routing:
	$(GO) run ./cmd/pawbench -routing BENCH_routing.json
