# Tier-1 verification plus the concurrency and performance gates added with
# the parallel construction substrate (internal/parbuild).

GO ?= go

.PHONY: check build test race bench-construction

# check is the full tier-1 gate: build, tests, and the race detector over
# every package that runs concurrent construction code.
check: build test race

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# race runs the concurrent builders (PAW, Qd-tree, k-d tree, beam, parbuild)
# under the race detector in short mode. Any new fan-out point must pass
# this before merging.
race:
	$(GO) test -race -short ./internal/core/... ./internal/qdtree/... ./internal/kdtree/... ./internal/parbuild/...

# bench-construction regenerates BENCH_construction.json: construction
# ns/op, allocs/op and parallel speedup at 1/2/4/8 workers, tracked across
# PRs.
bench-construction:
	$(GO) run ./cmd/pawbench -construction BENCH_construction.json
