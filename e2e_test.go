package paw

// End-to-end integration tests across the whole stack: data generation →
// layout construction (every method) → materialisation → SQL routing →
// simulated cluster execution → result verification against brute force,
// plus cross-module invariants checked with testing/quick-style random
// exploration.

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"paw/internal/blockstore"
	"paw/internal/cluster"
	"paw/internal/geom"
	"paw/internal/layout"
	"paw/internal/workload"
)

// TestEndToEndSQLAllMethods drives the full Fig. 4 pipeline for every
// partitioning method and verifies the returned row counts against direct
// dataset scans.
func TestEndToEndSQLAllMethods(t *testing.T) {
	data := GenerateTPCH(30_000, 101)
	hist := UniformWorkload(data.Domain(), 30, 102)
	statements := []string{
		"SELECT * FROM t WHERE l_quantity >= 10 AND l_quantity <= 20",
		"SELECT * FROM t WHERE l_shipdate BETWEEN 100 AND 900 AND l_discount >= 0.05",
		"SELECT * FROM t WHERE l_quantity <= 3 OR l_quantity >= 48",
		"SELECT * FROM t WHERE NOT (l_tax > 0.02) AND l_suppkey <= 50000",
	}
	for _, m := range []Method{MethodPAW, MethodQdTree, MethodKdTree} {
		l, err := Build(data, hist, Options{
			Method: m, MinRows: 10, SampleRows: 3_000,
			Delta: FractionOfDomain(data.Domain(), 0.0005),
		})
		if err != nil {
			t.Fatalf("%s: %v", m, err)
		}
		store := blockstore.Materialize(l, data, blockstore.Config{GroupRows: 256})
		clus := cluster.New(cluster.Defaults(), store, l)
		master, err := NewMaster(l, data.Names())
		if err != nil {
			t.Fatal(err)
		}
		for _, stmt := range statements {
			plan, err := master.RouteSQL(stmt)
			if err != nil {
				t.Fatalf("%s: %q: %v", m, stmt, err)
			}
			rows := 0
			want := 0
			for _, rp := range plan.Ranges {
				res, err := clus.Query(rp.Range, rp.Parts)
				if err != nil {
					t.Fatal(err)
				}
				rows += res.Rows
				want += data.CountInBox(rp.Range, nil)
			}
			if rows != want {
				t.Errorf("%s: %q returned %d rows, want %d", m, stmt, rows, want)
			}
		}
	}
}

// TestEndToEndZoneMapScans materialises a store with feature-vector zone
// maps trained on the workload and verifies, for every training query, that
// the stored scan counts still equal the brute-force dataset counts, that the
// per-partition byte accounting invariant holds, and that the zone maps
// actually skip row groups somewhere (they are exact on training queries).
func TestEndToEndZoneMapScans(t *testing.T) {
	data := GenerateTPCH(25_000, 113)
	hist := UniformWorkload(data.Domain(), 25, 114)
	l, err := Build(data, hist, Options{
		Method: MethodPAW, MinRows: 10, SampleRows: 2_500,
		Delta: FractionOfDomain(data.Domain(), 0.0005),
	})
	if err != nil {
		t.Fatal(err)
	}
	plain := blockstore.Materialize(l, data, blockstore.Config{GroupRows: 256})
	zoned := blockstore.Materialize(l, data, blockstore.Config{
		GroupRows: 256, ZoneQueries: hist.Boxes(),
	})
	zoneSkips := 0
	for _, q := range hist.Boxes() {
		ids := l.PartitionsFor(q)
		want := data.CountInBox(q, nil)
		pst, err := plain.ScanAll(ids, q)
		if err != nil {
			t.Fatal(err)
		}
		zst, err := zoned.ScanAll(ids, q)
		if err != nil {
			t.Fatal(err)
		}
		if pst.Matched != want || zst.Matched != want {
			t.Fatalf("query %v: plain %d / zoned %d rows, want %d", q, pst.Matched, zst.Matched, want)
		}
		if zst.BytesRead > pst.BytesRead {
			t.Fatalf("query %v: zone maps increased bytes read (%d > %d)", q, zst.BytesRead, pst.BytesRead)
		}
		zoneSkips += zst.GroupsZoneSkipped
		// Per-partition accounting: every encoded byte is either read or skipped.
		for _, id := range ids {
			st, err := zoned.ScanPartition(id, q)
			if err != nil {
				t.Fatal(err)
			}
			p, err := zoned.Partition(id)
			if err != nil {
				t.Fatal(err)
			}
			if st.BytesRead+st.BytesSkipped != p.Table.EncodedBytes() {
				t.Fatalf("partition %d: read %d + skipped %d != encoded %d",
					id, st.BytesRead, st.BytesSkipped, p.Table.EncodedBytes())
			}
		}
	}
	if zoneSkips == 0 {
		t.Error("zone maps never skipped a row group across the training workload")
	}
}

// TestLayoutPersistenceThroughFacade saves a PAW layout (with plugins) and
// reloads it, verifying the reloaded master routes identically.
func TestLayoutPersistenceThroughFacade(t *testing.T) {
	data := GenerateOSM(20_000, 8, 103).Normalize()
	hist := SkewedWorkload(data.Domain(), 30, 104)
	delta := FractionOfDomain(data.Domain(), 0.01)
	l, err := Build(data, hist, Options{Method: MethodPAW, MinRows: 8, SampleRows: 2_000, Delta: delta})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := InstallPreciseDescriptors(l, data, 3); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := l.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := layout.Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	fut := FutureWorkload(hist, delta, 1, 105)
	for _, q := range fut.Boxes() {
		a, b := l.PartitionsFor(q), got.PartitionsFor(q)
		if len(a) != len(b) {
			t.Fatalf("routing diverged after reload: %v vs %v", a, b)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("routing diverged after reload: %v vs %v", a, b)
			}
		}
		if l.QueryCost(q, nil) != got.QueryCost(q, nil) {
			t.Fatalf("cost diverged after reload for %v", q)
		}
	}
}

// TestQuickCostDominatesLowerBound: for random layouts and random queries,
// the cost model never undercuts the exact result size.
func TestQuickCostDominatesLowerBound(t *testing.T) {
	data := GenerateTPCH(10_000, 106).Project(3).Normalize()
	hist := UniformWorkload(data.Domain(), 20, 107)
	l, err := Build(data, hist, Options{MinRows: 20, SampleRows: 2_000, Delta: FractionOfDomain(data.Domain(), 0.01)})
	if err != nil {
		t.Fatal(err)
	}
	f := func(a, b, c, d, e, g float64) bool {
		q := boxFromRaw(3, []float64{a, b, c}, []float64{d, e, g})
		return l.QueryCost(q, nil) >= layout.LowerBoundBytes(data, q)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestQuickRoutedSetCoversResults: every row matching a random query lives
// in a partition the master selects.
func TestQuickRoutedSetCoversResults(t *testing.T) {
	data := GenerateTPCH(8_000, 108).Project(2).Normalize()
	hist := UniformWorkload(data.Domain(), 15, 109)
	l, err := Build(data, hist, Options{MinRows: 10, SampleRows: 1_600, Delta: FractionOfDomain(data.Domain(), 0.02)})
	if err != nil {
		t.Fatal(err)
	}
	byPart := l.RouteIndices(data, allRows(data.NumRows()))
	rng := rand.New(rand.NewSource(110))
	for iter := 0; iter < 200; iter++ {
		lo := geom.Point{rng.Float64(), rng.Float64()}
		hi := geom.Point{lo[0] + rng.Float64()*0.2, lo[1] + rng.Float64()*0.2}
		q := geom.Box{Lo: lo, Hi: hi}
		selected := map[layout.ID]bool{}
		for _, id := range l.PartitionsFor(q) {
			selected[id] = true
		}
		for id, rows := range byPart {
			if selected[id] {
				continue
			}
			for _, r := range rows {
				if data.RowInBox(r, q) {
					t.Fatalf("row %d matches %v but its partition %d was not selected", r, q, id)
				}
			}
		}
	}
}

// TestQuickLemma1Dominance: random δ-similar future workloads never cost
// more on average than the extended worst-case workload, for every method's
// layout.
func TestQuickLemma1Dominance(t *testing.T) {
	data := GenerateTPCH(12_000, 111).Project(3).Normalize()
	dom := data.Domain()
	hist := UniformWorkload(dom, 20, 112)
	delta := FractionOfDomain(dom, 0.015)
	l, err := Build(data, hist, Options{MinRows: 15, SampleRows: 2_400, Delta: delta})
	if err != nil {
		t.Fatal(err)
	}
	worst := l.AvgCost(hist.Extend(delta).Boxes(), nil)
	for seed := int64(0); seed < 20; seed++ {
		fut := workload.Future(hist, delta, 1+int(seed%3), 200+seed)
		if got := l.AvgCost(fut.Boxes(), nil); got > worst+1e-6 {
			t.Fatalf("seed %d: future avg cost %v exceeds worst-case %v", seed, got, worst)
		}
	}
}

// boxFromRaw builds a well-formed query box in [0,1]^dims from arbitrary
// float inputs (quick feeds anything, including NaN).
func boxFromRaw(dims int, lo, hi []float64) geom.Box {
	q := geom.Box{Lo: make(geom.Point, dims), Hi: make(geom.Point, dims)}
	for d := 0; d < dims; d++ {
		a, b := sanitize(lo[d]), sanitize(hi[d])
		if a > b {
			a, b = b, a
		}
		q.Lo[d], q.Hi[d] = a, b
	}
	return q
}

func sanitize(x float64) float64 {
	if x != x || x > 1e300 || x < -1e300 { // NaN or huge
		return 0.5
	}
	// Fold into [0, 1].
	if x < 0 {
		x = -x
	}
	for x > 1 {
		x /= 10
	}
	return x
}
