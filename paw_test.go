package paw

import (
	"testing"
)

func TestBuildAllMethods(t *testing.T) {
	data := GenerateTPCH(20000, 1)
	dom := data.Domain()
	hist := UniformWorkload(dom, 25, 2)
	delta := FractionOfDomain(dom, 0.01)
	for _, m := range []Method{MethodPAW, MethodQdTree, MethodKdTree} {
		l, err := Build(data, hist, Options{Method: m, MinRows: 300, Delta: delta})
		if err != nil {
			t.Fatalf("%s: %v", m, err)
		}
		if string(m) != l.Method {
			t.Errorf("layout method %q, want %q", l.Method, m)
		}
		if err := l.Validate(data, 1); err != nil {
			t.Errorf("%s: %v", m, err)
		}
	}
}

func TestBuildDefaultsToPAW(t *testing.T) {
	data := GenerateTPCH(5000, 3)
	hist := UniformWorkload(data.Domain(), 10, 4)
	l, err := Build(data, hist, Options{MinRows: 200})
	if err != nil {
		t.Fatal(err)
	}
	if l.Method != "paw" {
		t.Errorf("default method = %q", l.Method)
	}
}

func TestBuildValidation(t *testing.T) {
	data := GenerateTPCH(1000, 5)
	hist := UniformWorkload(data.Domain(), 5, 6)
	if _, err := Build(nil, hist, Options{MinRows: 10}); err == nil {
		t.Error("nil dataset must error")
	}
	if _, err := Build(data, hist, Options{MinRows: 0}); err == nil {
		t.Error("MinRows 0 must error")
	}
	if _, err := Build(data, hist, Options{MinRows: 10, Method: "nope"}); err == nil {
		t.Error("unknown method must error")
	}
}

func TestBuildOnSample(t *testing.T) {
	data := GenerateTPCH(30000, 7)
	hist := UniformWorkload(data.Domain(), 20, 8)
	l, err := Build(data, hist, Options{
		Method: MethodPAW, MinRows: 100, SampleRows: 3000,
		Delta: FractionOfDomain(data.Domain(), 0.01),
	})
	if err != nil {
		t.Fatal(err)
	}
	var sum int64
	for _, p := range l.Parts {
		sum += p.FullRows
	}
	if sum != 30000 {
		t.Errorf("routed %d of 30000 rows", sum)
	}
}

func TestSkipRouting(t *testing.T) {
	data := GenerateTPCH(5000, 9)
	hist := UniformWorkload(data.Domain(), 10, 10)
	l, err := Build(data, hist, Options{MinRows: 100, SkipRouting: true})
	if err != nil {
		t.Fatal(err)
	}
	if l.TotalBytes != 0 {
		t.Error("SkipRouting must leave the layout unrouted")
	}
}

func TestEndToEndWithPlugins(t *testing.T) {
	data := GenerateOSM(15000, 8, 11)
	dom := data.Domain()
	hist := SkewedWorkload(dom, 30, 12)
	delta := FractionOfDomain(dom, 0.01)
	l, err := Build(data, hist, Options{Method: MethodPAW, MinRows: 300, Delta: delta})
	if err != nil {
		t.Fatal(err)
	}
	fut := FutureWorkload(hist, delta, 1, 13)
	before := l.ScanRatio(fut.Boxes(), nil)

	if _, err := InstallPreciseDescriptors(l, data, 3); err != nil {
		t.Fatal(err)
	}
	extras := SelectExtraPartitions(l, data, hist.Extend(delta).Boxes(), data.TotalBytes()/5)
	after := l.ScanRatio(fut.Boxes(), extras)
	if after > before {
		t.Errorf("plugins increased scan ratio: %v -> %v", before, after)
	}
	lb := LowerBoundRatio(data, fut.Boxes())
	if after < lb {
		t.Errorf("scan ratio %v below the lower bound %v", after, lb)
	}
}

func TestMasterIntegration(t *testing.T) {
	data := GenerateTPCH(10000, 14)
	hist := UniformWorkload(data.Domain(), 15, 15)
	l, err := Build(data, hist, Options{MinRows: 300, Delta: FractionOfDomain(data.Domain(), 0.01)})
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewMaster(l, data.Names())
	if err != nil {
		t.Fatal(err)
	}
	plan, err := m.RouteSQL("SELECT * FROM lineitem WHERE l_quantity >= 10 AND l_quantity <= 20")
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.PartitionIDs()) == 0 {
		t.Error("plan routed no partitions")
	}
}

func TestEstimateDeltaFacade(t *testing.T) {
	data := GenerateTPCH(1000, 16)
	hist := UniformWorkload(data.Domain(), 40, 17)
	d, err := EstimateDelta(hist)
	if err != nil {
		t.Fatal(err)
	}
	if d <= 0 {
		t.Errorf("estimated delta = %v", d)
	}
	ok, err := AreSimilar(hist, hist, 0)
	if err != nil || !ok {
		t.Error("a workload is 0-similar to itself")
	}
}
