// Command pawviz renders 2-d partition layouts together with query
// workloads, reproducing the case study of Figures 13–14: partition
// boundaries in green, query regions in red.
//
// Usage:
//
//	pawviz -method paw -workload future -out paw_future.svg
//	pawviz -dataset osm -method qd-tree -workload hist -out qd_hist.svg
//	pawviz -method kd-tree -ascii
//
// The dataset is projected to its first two dimensions for rendering.
package main

import (
	"flag"
	"fmt"
	"os"

	"paw/internal/core"
	"paw/internal/dataset"
	"paw/internal/kdtree"
	"paw/internal/layout"
	"paw/internal/qdtree"
	"paw/internal/viz"
	"paw/internal/workload"
)

func main() {
	var (
		ds       = flag.String("dataset", "tpch", "dataset: tpch or osm")
		method   = flag.String("method", "paw", "method: paw, qd-tree or kd-tree")
		wl       = flag.String("workload", "hist", "workload to draw: hist or future")
		rows     = flag.Int("rows", 60000, "dataset rows")
		queries  = flag.Int("queries", 12, "historical query count")
		deltaPct = flag.Float64("delta", 1.0, "δ as %% of the domain")
		out      = flag.String("out", "", "SVG output path (empty: stdout summary only)")
		ascii    = flag.Bool("ascii", false, "print an ASCII rendering")
		seed     = flag.Int64("seed", 42, "generator seed")
	)
	flag.Parse()

	var data *dataset.Dataset
	switch *ds {
	case "tpch":
		data = dataset.TPCHLike(*rows, *seed).Project(2).Normalize()
	case "osm":
		data = dataset.OSMLike(*rows, 10, *seed).Normalize()
	default:
		fatalf("unknown dataset %q", *ds)
	}
	dom := data.Domain()
	hist := workload.Uniform(dom, workload.GenParams{
		NumQueries: *queries, MaxRangeFrac: 0.10, Centers: 10, SigmaFrac: 0.10, Seed: *seed + 1,
	})
	delta := *deltaPct / 100 * (dom.Hi[0] - dom.Lo[0])
	fut := workload.Future(hist, delta, 1, *seed+2)

	sample := data.Sample(*rows/10, *seed+3)
	minRows := len(sample) / 100
	if minRows < 2 {
		minRows = 2
	}
	var l *layout.Layout
	switch *method {
	case "paw":
		l = core.Build(data, sample, dom, hist, core.Params{MinRows: minRows, Delta: delta})
	case "qd-tree":
		l = qdtree.Build(data, sample, dom, hist.Boxes(), qdtree.Params{MinRows: minRows})
	case "kd-tree":
		l = kdtree.Build(data, sample, dom, kdtree.Params{MinRows: minRows})
	default:
		fatalf("unknown method %q", *method)
	}
	l.Route(data)

	drawn := hist
	if *wl == "future" {
		drawn = fut
	}
	fmt.Printf("%s on %s: %d partitions, scan ratio on %s workload: %.3f%%\n",
		*method, *ds, l.NumPartitions(), *wl, 100*l.ScanRatio(drawn.Boxes(), nil))

	if *ascii {
		fmt.Println(viz.ASCII(l, drawn, dom, 96, 36))
	}
	if *out != "" {
		if err := os.WriteFile(*out, []byte(viz.SVG(l, drawn, dom, 800, 800)), 0o644); err != nil {
			fatalf("writing %s: %v", *out, err)
		}
		fmt.Printf("wrote %s\n", *out)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "pawviz: "+format+"\n", args...)
	os.Exit(1)
}
