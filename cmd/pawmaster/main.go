// Command pawmaster is the networked master node of Fig. 4: it loads the
// layout metadata, connects to the workers (round-robin partition ownership,
// matching pawworker's convention) and serves SQL over TCP for pawsql
// clients.
//
//	pawmaster -data data.pawd -layout layout.pawl \
//	          -workers 127.0.0.1:7101,127.0.0.1:7102 -listen 127.0.0.1:7100
//
// With -replicas R > 1 the master places replica r of partition p on worker
// (p+r) mod W and fails scans over to the next live replica when a worker is
// down; pawworker must be started with the same -replicas value so every
// process derives the same placement without coordination. The retry,
// backoff and breaker flags tune the failure handling of DESIGN.md §10.
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"os"
	"os/signal"
	"strings"
	"time"

	"paw/internal/dataset"
	"paw/internal/dist"
	"paw/internal/layout"
	"paw/internal/obs"
	"paw/internal/placement"
	"paw/internal/router"
)

func main() {
	var (
		dataPath   = flag.String("data", "", "dataset file (.pawd; only column names are used)")
		layoutPath = flag.String("layout", "", "layout file (.pawl)")
		workers    = flag.String("workers", "", "comma-separated worker addresses")
		listen     = flag.String("listen", "127.0.0.1:7100", "client listen address")
		metrics    = flag.String("metrics", "", "serve /metrics (Prometheus text or ?format=json) and /debug/pprof on this address (e.g. 127.0.0.1:9090); empty disables")
		logLevel   = flag.String("log-level", "info", "log level: debug, info, warn, error")

		replicas     = flag.Int("replicas", 1, "copies per partition; replica r of partition p lives on worker (p+r) mod workers (pawworker needs the same value)")
		partial      = flag.Bool("partial", false, "answer from surviving replicas when a partition is lost instead of failing the query")
		callTimeout  = flag.Duration("call-timeout", 5*time.Second, "per-scan-RPC timeout, dial included (0: only the query deadline bounds calls)")
		queryTimeout = flag.Duration("query-timeout", 30*time.Second, "whole-query timeout when the client sends no deadline (0: unbounded)")
		retries      = flag.Int("retries", 2, "attempts per worker call before giving up on that replica")
		retryBudget  = flag.Int("retry-budget", 16, "total retries one query may spend across all its calls (0: unlimited)")
		backoff      = flag.Duration("backoff", 5*time.Millisecond, "base backoff between attempts (doubled per retry, jittered)")
		maxBackoff   = flag.Duration("max-backoff", 500*time.Millisecond, "backoff ceiling")
		retrySeed    = flag.Int64("retry-seed", 1, "seed for the backoff jitter (fixed seeds reproduce schedules)")
		breakerN     = flag.Int("breaker-threshold", 3, "consecutive failures that open a worker's circuit breaker")
		breakerCool  = flag.Duration("breaker-cooldown", 500*time.Millisecond, "time an open breaker waits before admitting a probe")

		gobTransport   = flag.Bool("gob-transport", false, "speak the legacy gob protocol to workers instead of the multiplexed binary frames (differential oracle)")
		connsPerWorker = flag.Int("conns-per-worker", 2, "multiplexed connections per worker (binary transport)")
		clientPipeline = flag.Int("client-pipeline", 32, "max in-flight queries per binary client session")
		planCache      = flag.Int("plan-cache", 1024, "routed-plan (descriptor) cache entries (0: off)")
		resultCache    = flag.Int("result-cache", 256, "clean-result cache entries, invalidated on layout/placement change (0: off)")
		maxInflight    = flag.Int("max-inflight", 256, "admission control: queries executing concurrently before new ones queue (0: unbounded, no admission)")
		maxQueued      = flag.Int("max-queued", 32, "admission control: queued queries per client before shedding with an overload error")
	)
	flag.Parse()
	if _, err := obs.SetupLogger(*logLevel); err != nil {
		fatalf("%v", err)
	}
	if *dataPath == "" || *layoutPath == "" || *workers == "" {
		fatalf("-data, -layout and -workers are required")
	}
	f, err := os.Open(*dataPath)
	if err != nil {
		fatalf("%v", err)
	}
	data, err := dataset.Read(f)
	f.Close()
	if err != nil {
		fatalf("reading %s: %v", *dataPath, err)
	}
	lf, err := os.Open(*layoutPath)
	if err != nil {
		fatalf("%v", err)
	}
	l, err := layout.Decode(lf)
	lf.Close()
	if err != nil {
		fatalf("reading %s: %v", *layoutPath, err)
	}
	rm, err := router.NewMaster(l, data.Names())
	if err != nil {
		fatalf("%v", err)
	}
	addrs := strings.Split(*workers, ",")
	if *replicas < 1 || *replicas > len(addrs) {
		fatalf("-replicas %d out of range for %d workers", *replicas, len(addrs))
	}
	rep := make(placement.Replicated, len(l.Parts))
	for _, p := range l.Parts {
		for r := 0; r < *replicas; r++ {
			rep[p.ID] = append(rep[p.ID], (int(p.ID)+r)%len(addrs))
		}
	}
	m, err := dist.NewMasterReplicated(rm, addrs, rep)
	if err != nil {
		fatalf("%v", err)
	}
	m.Configure(dist.Config{
		Retry: dist.RetryPolicy{
			MaxAttempts:      *retries,
			QueryRetryBudget: *retryBudget,
			BaseBackoff:      *backoff,
			MaxBackoff:       *maxBackoff,
			Seed:             *retrySeed,
			BreakerThreshold: *breakerN,
			BreakerCooldown:  *breakerCool,
		},
		CallTimeout:  *callTimeout,
		QueryTimeout: *queryTimeout,
		AllowPartial: *partial,

		Transport:          transportFlag(*gobTransport),
		ConnsPerWorker:     *connsPerWorker,
		ClientPipeline:     *clientPipeline,
		PlanCacheSize:      *planCache,
		ResultCacheSize:    *resultCache,
		MaxInflightQueries: *maxInflight,
		MaxQueuedPerClient: *maxQueued,
	})
	if *metrics != "" {
		// One registry for both layers: routing (latency histogram,
		// partitions/bytes touched) and the distributed path (fan-out,
		// per-worker call timers, redials, in-flight).
		reg := obs.New()
		rm.SetMetrics(reg)
		m.SetMetrics(reg)
		srv, err := obs.Serve(*metrics, reg)
		if err != nil {
			fatalf("metrics listener: %v", err)
		}
		defer srv.Close()
		slog.Info("telemetry enabled", "metrics", "http://"+srv.Addr()+"/metrics",
			"pprof", "http://"+srv.Addr()+"/debug/pprof/")
	}
	addr, err := m.Start(*listen)
	if err != nil {
		fatalf("%v", err)
	}
	fmt.Printf("pawmaster serving %d partitions over %d workers on %s (metadata: %d bytes)\n",
		l.NumPartitions(), len(addrs), addr, rm.MemoryFootprint())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	<-sig
	m.Close()
}

func transportFlag(gob bool) dist.Transport {
	if gob {
		return dist.TransportGob
	}
	return dist.TransportBinary
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "pawmaster: "+format+"\n", args...)
	os.Exit(1)
}
