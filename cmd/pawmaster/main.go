// Command pawmaster is the networked master node of Fig. 4: it loads the
// layout metadata, connects to the workers (round-robin partition ownership,
// matching pawworker's convention) and serves SQL over TCP for pawsql
// clients.
//
//	pawmaster -data data.pawd -layout layout.pawl \
//	          -workers 127.0.0.1:7101,127.0.0.1:7102 -listen 127.0.0.1:7100
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"os"
	"os/signal"
	"strings"

	"paw/internal/dataset"
	"paw/internal/dist"
	"paw/internal/layout"
	"paw/internal/obs"
	"paw/internal/router"
)

func main() {
	var (
		dataPath   = flag.String("data", "", "dataset file (.pawd; only column names are used)")
		layoutPath = flag.String("layout", "", "layout file (.pawl)")
		workers    = flag.String("workers", "", "comma-separated worker addresses")
		listen     = flag.String("listen", "127.0.0.1:7100", "client listen address")
		metrics    = flag.String("metrics", "", "serve /metrics (Prometheus text or ?format=json) and /debug/pprof on this address (e.g. 127.0.0.1:9090); empty disables")
		logLevel   = flag.String("log-level", "info", "log level: debug, info, warn, error")
	)
	flag.Parse()
	if _, err := obs.SetupLogger(*logLevel); err != nil {
		fatalf("%v", err)
	}
	if *dataPath == "" || *layoutPath == "" || *workers == "" {
		fatalf("-data, -layout and -workers are required")
	}
	f, err := os.Open(*dataPath)
	if err != nil {
		fatalf("%v", err)
	}
	data, err := dataset.Read(f)
	f.Close()
	if err != nil {
		fatalf("reading %s: %v", *dataPath, err)
	}
	lf, err := os.Open(*layoutPath)
	if err != nil {
		fatalf("%v", err)
	}
	l, err := layout.Decode(lf)
	lf.Close()
	if err != nil {
		fatalf("reading %s: %v", *layoutPath, err)
	}
	rm, err := router.NewMaster(l, data.Names())
	if err != nil {
		fatalf("%v", err)
	}
	addrs := strings.Split(*workers, ",")
	place := make(map[layout.ID]int, len(l.Parts))
	for _, p := range l.Parts {
		place[p.ID] = int(p.ID) % len(addrs)
	}
	m, err := dist.NewMaster(rm, addrs, place)
	if err != nil {
		fatalf("%v", err)
	}
	if *metrics != "" {
		// One registry for both layers: routing (latency histogram,
		// partitions/bytes touched) and the distributed path (fan-out,
		// per-worker call timers, redials, in-flight).
		reg := obs.New()
		rm.SetMetrics(reg)
		m.SetMetrics(reg)
		srv, err := obs.Serve(*metrics, reg)
		if err != nil {
			fatalf("metrics listener: %v", err)
		}
		defer srv.Close()
		slog.Info("telemetry enabled", "metrics", "http://"+srv.Addr()+"/metrics",
			"pprof", "http://"+srv.Addr()+"/debug/pprof/")
	}
	addr, err := m.Start(*listen)
	if err != nil {
		fatalf("%v", err)
	}
	fmt.Printf("pawmaster serving %d partitions over %d workers on %s (metadata: %d bytes)\n",
		l.NumPartitions(), len(addrs), addr, rm.MemoryFootprint())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	<-sig
	m.Close()
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "pawmaster: "+format+"\n", args...)
	os.Exit(1)
}
