// Command pawmaster is the networked master node of Fig. 4: it loads the
// layout metadata, connects to the workers (round-robin partition ownership,
// matching pawworker's convention) and serves SQL over TCP for pawsql
// clients.
//
//	pawmaster -data data.pawd -layout layout.pawl \
//	          -workers 127.0.0.1:7101,127.0.0.1:7102 -listen 127.0.0.1:7100
//
// With -replicas R > 1 the master keeps R copies of every partition and
// fails scans over to the next live replica when a worker is down. The
// placement rule is -placement: "mod" (replica r of partition p on worker
// (p+r) mod W, the legacy convention) or "ring" (consistent hashing over
// -vnodes virtual nodes — the rule elastic clusters rebalance to, so a
// ring-placed cluster's first rebalance is a no-op). pawworker must be
// started with the same -placement, -replicas and -vnodes values so every
// process derives the same placement without coordination. The retry,
// backoff and breaker flags tune the failure handling of DESIGN.md §10.
//
// With -membership the fleet is elastic (DESIGN.md §15): workers join and
// leave through a checksum-validated handshake on the client port, silent
// workers go suspect and then dead under the heartbeat failure detector
// (-suspect-after / -dead-after, advanced every -member-tick), and the
// master re-places partitions with minimal movement — on demand after a
// graceful leave, or automatically (-rebalance-auto) when the placement
// references a dead worker or a new member hosts nothing. -rebalance-budget
// bounds the bytes one automatic round ships; deferred moves complete in
// later rounds. Queries keep answering exactly throughout: rebalances ride
// the epoch-versioned migration machinery, so a failed round aborts with
// the old placement untouched.
//
// With -drift the master watches live queries for workload drift (DESIGN.md
// §13): when the stream leaves the layout's variance scope (-drift-delta,
// the δ the layout was built with, referenced against the -drift-hist query
// log) and observed scan cost regresses, it rebuilds the violated region and
// migrates the workers onto the patched layout without stopping service.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"time"

	"paw/internal/colstore"
	"paw/internal/dataset"
	"paw/internal/dist"
	"paw/internal/drift"
	"paw/internal/layout"
	"paw/internal/membership"
	"paw/internal/obs"
	"paw/internal/placement"
	"paw/internal/router"
	"paw/internal/trace"
	"paw/internal/workload"
)

func main() {
	var (
		dataPath   = flag.String("data", "", "dataset file (.pawd; column names drive SQL routing, full rows feed drift rebuilds)")
		layoutPath = flag.String("layout", "", "layout file (.pawl)")
		workers    = flag.String("workers", "", "comma-separated worker addresses")
		listen     = flag.String("listen", "127.0.0.1:7100", "client listen address")
		metrics    = flag.String("metrics", "", "serve /metrics (Prometheus text or ?format=json), /traces, /healthz, /readyz and /debug/pprof on this address (e.g. 127.0.0.1:9090); empty disables")
		logLevel   = flag.String("log-level", "info", "log level: debug, info, warn, error")

		traceSample = flag.Int("trace-sample", 0, "sample one query trace in every N (0: only forced EXPLAIN traces; needs -metrics for /traces)")
		traceBuf    = flag.Int("trace-buf", 64, "finished traces retained for /traces")
		traceOut    = flag.String("trace-out", "", "append one JSONL cost record per query to this file (schema "+trace.CostRecordSchema+")")
		slowQuery   = flag.Duration("slow-query", 0, "log a structured slow-query record for queries at or above this latency (0: off)")

		replicas     = flag.Int("replicas", 1, "copies per partition (pawworker needs the same value)")
		placeRule    = flag.String("placement", "mod", "placement rule: mod or ring (pawworker needs the same value)")
		vnodes       = flag.Int("vnodes", membership.DefaultVNodes, "virtual nodes per worker for ring placement and rebalance targets")
		partial      = flag.Bool("partial", false, "answer from surviving replicas when a partition is lost instead of failing the query")
		callTimeout  = flag.Duration("call-timeout", 5*time.Second, "per-scan-RPC timeout, dial included (0: only the query deadline bounds calls)")
		queryTimeout = flag.Duration("query-timeout", 30*time.Second, "whole-query timeout when the client sends no deadline (0: unbounded)")
		retries      = flag.Int("retries", 2, "attempts per worker call before giving up on that replica")
		retryBudget  = flag.Int("retry-budget", 16, "total retries one query may spend across all its calls (0: unlimited)")
		backoff      = flag.Duration("backoff", 5*time.Millisecond, "base backoff between attempts (doubled per retry, jittered)")
		maxBackoff   = flag.Duration("max-backoff", 500*time.Millisecond, "backoff ceiling")
		retrySeed    = flag.Int64("retry-seed", 1, "seed for the backoff jitter (fixed seeds reproduce schedules)")
		breakerN     = flag.Int("breaker-threshold", 3, "consecutive failures that open a worker's circuit breaker")
		breakerCool  = flag.Duration("breaker-cooldown", 500*time.Millisecond, "time an open breaker waits before admitting a probe")

		memberOn     = flag.Bool("membership", false, "enable elastic membership: workers may join/leave at runtime and silent ones are declared dead (DESIGN.md §15)")
		suspectAfter = flag.Duration("suspect-after", 2*time.Second, "heartbeat silence before a worker goes suspect (still placed, still queried)")
		deadAfter    = flag.Duration("dead-after", 10*time.Second, "heartbeat silence before a worker is declared dead (deprioritised, rebalanced away)")
		memberTick   = flag.Duration("member-tick", 500*time.Millisecond, "failure-detector tick period")
		rebalAuto    = flag.Bool("rebalance-auto", true, "rebalance automatically when the placement references a dead worker or a live member hosts nothing")
		rebalCool    = flag.Duration("rebalance-cooldown", 5*time.Second, "minimum spacing between automatic rebalances")
		rebalBudget  = flag.Int64("rebalance-budget", 0, "max payload bytes one rebalance round ships; excess moves defer to later rounds (0: unbounded; graceful-leave drains always ignore it)")
		drainTimeout = flag.Duration("drain-timeout", 30*time.Second, "post-cutover wait for in-flight old-epoch queries before the epoch retires anyway (expiries are counted)")

		gobTransport   = flag.Bool("gob-transport", false, "speak the legacy gob protocol to workers instead of the multiplexed binary frames (differential oracle)")
		connsPerWorker = flag.Int("conns-per-worker", 2, "multiplexed connections per worker (binary transport)")
		clientPipeline = flag.Int("client-pipeline", 32, "max in-flight queries per binary client session")
		planCache      = flag.Int("plan-cache", 1024, "routed-plan (descriptor) cache entries (0: off)")
		resultCache    = flag.Int("result-cache", 256, "clean-result cache entries, invalidated on layout/placement change (0: off)")
		maxInflight    = flag.Int("max-inflight", 256, "admission control: queries executing concurrently before new ones queue (0: unbounded, no admission)")
		maxQueued      = flag.Int("max-queued", 32, "admission control: queued queries per client before shedding with an overload error")

		driftOn       = flag.Bool("drift", false, "watch live queries for workload drift and migrate the cluster onto an incrementally rebuilt layout when the variance scope is violated (needs -drift-hist and -drift-delta)")
		driftHist     = flag.String("drift-hist", "", "historical query log (.pawq) the layout was built from — the drift monitor's reference workload")
		driftDelta    = flag.Float64("drift-delta", 0, "variance scope δ the layout was built with (absolute domain units)")
		driftWindow   = flag.Int("drift-window", 256, "drift monitor sliding window, in observed queries")
		driftCheck    = flag.Int("drift-check-every", 32, "run the drift decision every N observations")
		driftSlack    = flag.Float64("drift-delta-slack", 1, "scale δ before the scope check (>1: lazier trigger than the build-time scope)")
		driftCost     = flag.Float64("drift-cost-factor", 1.3, "trigger only when the window's average scan bytes exceed this factor times the baseline")
		driftGain     = flag.Float64("drift-min-gain", 0.05, "minimum fraction of modeled window cost a rebuild must cut, or the migration is skipped")
		driftCooldown = flag.Int("drift-cooldown", 0, "observations to mute the monitor after a migration or skipped trigger (0: one window)")
		driftReplicas = flag.Int("drift-replicas", 1, "replica count for partitions added by a drift rebuild (surviving partitions keep their replica sets)")
		driftValidate = flag.Bool("drift-validate", true, "run the invariant drift/cutover oracles on every patch before it is applied")
		driftSeed     = flag.Int64("drift-seed", 1, "seed for the rebuild's sampling and the oracle probes")
	)
	flag.Parse()
	if _, err := obs.SetupLogger(*logLevel); err != nil {
		fatalf("%v", err)
	}
	if *dataPath == "" || *layoutPath == "" || *workers == "" {
		fatalf("-data, -layout and -workers are required")
	}
	f, err := os.Open(*dataPath)
	if err != nil {
		fatalf("%v", err)
	}
	data, err := dataset.Read(f)
	f.Close()
	if err != nil {
		fatalf("reading %s: %v", *dataPath, err)
	}
	lf, err := os.Open(*layoutPath)
	if err != nil {
		fatalf("%v", err)
	}
	l, err := layout.Decode(lf)
	lf.Close()
	if err != nil {
		fatalf("reading %s: %v", *layoutPath, err)
	}
	rm, err := router.NewMaster(l, data.Names())
	if err != nil {
		fatalf("%v", err)
	}
	addrs := strings.Split(*workers, ",")
	if *replicas < 1 || *replicas > len(addrs) {
		fatalf("-replicas %d out of range for %d workers", *replicas, len(addrs))
	}
	ids := make([]layout.ID, len(l.Parts))
	for i, p := range l.Parts {
		ids[i] = p.ID
	}
	var rep placement.Replicated
	switch *placeRule {
	case "mod":
		rep = membership.ModPlacement(ids, len(addrs), *replicas)
	case "ring":
		all := make([]int, len(addrs))
		for i := range all {
			all[i] = i
		}
		rep = membership.RingPlacement(ids, all, *replicas, *vnodes)
	default:
		fatalf("unknown -placement %q (want mod or ring)", *placeRule)
	}
	m, err := dist.NewMasterReplicated(rm, addrs, rep)
	if err != nil {
		fatalf("%v", err)
	}
	m.Configure(dist.Config{
		Retry: dist.RetryPolicy{
			MaxAttempts:      *retries,
			QueryRetryBudget: *retryBudget,
			BaseBackoff:      *backoff,
			MaxBackoff:       *maxBackoff,
			Seed:             *retrySeed,
			BreakerThreshold: *breakerN,
			BreakerCooldown:  *breakerCool,
		},
		CallTimeout:  *callTimeout,
		QueryTimeout: *queryTimeout,
		AllowPartial: *partial,
		SlowQuery:    *slowQuery,
		DrainTimeout: *drainTimeout,

		Transport:          transportFlag(*gobTransport),
		ConnsPerWorker:     *connsPerWorker,
		ClientPipeline:     *clientPipeline,
		PlanCacheSize:      *planCache,
		ResultCacheSize:    *resultCache,
		MaxInflightQueries: *maxInflight,
		MaxQueuedPerClient: *maxQueued,
	})
	// The tracer exists whenever traces can be produced: by sampling
	// (-trace-sample) or on demand (pawsql -explain always works, but only a
	// tracer retains those traces for /traces).
	var tracer *trace.Tracer
	if *traceSample > 0 || *metrics != "" {
		tracer = trace.New(trace.Config{SampleEvery: *traceSample, Capacity: *traceBuf})
		m.SetTracer(tracer)
	}
	if *traceOut != "" {
		cf, err := os.OpenFile(*traceOut, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			fatalf("opening -trace-out: %v", err)
		}
		costLog := trace.NewCostLog(cf)
		m.SetCostLog(costLog)
		defer costLog.Close()
	}
	var reg *obs.Registry
	if *metrics != "" {
		// One registry for all layers: routing (latency histogram,
		// partitions/bytes touched), the distributed path (fan-out,
		// per-worker call timers, redials, in-flight) and the drift loop.
		reg = obs.New()
		rm.SetMetrics(reg)
		m.SetMetrics(reg)
		srv, err := obs.ServeWith(*metrics, reg, map[string]http.Handler{
			"/traces":  trace.Handler(tracer),
			"/healthz": obs.Healthz(),
			"/readyz":  obs.Readyz(m.Ready),
		})
		if err != nil {
			fatalf("metrics listener: %v", err)
		}
		defer srv.Close()
		slog.Info("telemetry enabled", "metrics", "http://"+srv.Addr()+"/metrics",
			"traces", "http://"+srv.Addr()+"/traces",
			"pprof", "http://"+srv.Addr()+"/debug/pprof/")
	}
	if *driftOn {
		if *driftHist == "" || *driftDelta <= 0 {
			fatalf("-drift needs -drift-hist (the reference query log) and -drift-delta > 0")
		}
		hf, err := os.Open(*driftHist)
		if err != nil {
			fatalf("%v", err)
		}
		histLog, err := workload.DecodeLog(hf)
		hf.Close()
		if err != nil {
			fatalf("reading %s: %v", *driftHist, err)
		}
		ctl := drift.New(m, data, histLog.Workload(), drift.Config{
			Window:     *driftWindow,
			CheckEvery: *driftCheck,
			Delta:      *driftDelta,
			DeltaSlack: *driftSlack,
			CostFactor: *driftCost,
			MinGain:    *driftGain,
			Cooldown:   *driftCooldown,
			Replicas:   *driftReplicas,
			Validate:   *driftValidate,
			Seed:       *driftSeed,
		})
		ctl.SetMetrics(reg)
		ctl.SetTracer(tracer)
		ctl.Attach(true)
		defer ctl.Detach()
		slog.Info("drift monitor attached", "window", *driftWindow, "check_every", *driftCheck,
			"delta", *driftDelta, "cost_factor", *driftCost, "reference_queries", histLog.Len())
	}
	if *memberOn {
		// The master holds the full dataset, so it can re-encode any
		// partition's payload itself — the rebalance fallback when no live
		// worker still holds a copy.
		all := make([]int, data.NumRows())
		for i := range all {
			all[i] = i
		}
		byPart := l.RouteIndices(data, all)
		src := func(id layout.ID) ([]byte, int64, error) {
			rows, ok := byPart[id]
			if !ok {
				return nil, 0, fmt.Errorf("partition %d routes no rows", id)
			}
			tab := colstore.FromDataset(data, rows, colstore.DefaultGroupRows)
			var buf bytes.Buffer
			if err := tab.Encode(&buf); err != nil {
				return nil, 0, err
			}
			return buf.Bytes(), int64(len(rows)), nil
		}
		err := m.EnableMembership(dist.MembershipConfig{
			Detector:          membership.Config{SuspectAfter: *suspectAfter, DeadAfter: *deadAfter},
			TickEvery:         *memberTick,
			Replicas:          *replicas,
			VNodes:            *vnodes,
			AutoRebalance:     *rebalAuto,
			RebalanceCooldown: *rebalCool,
			MaxMoveBytes:      *rebalBudget,
			PayloadSource:     src,
		})
		if err != nil {
			fatalf("%v", err)
		}
		slog.Info("elastic membership enabled", "suspect_after", *suspectAfter,
			"dead_after", *deadAfter, "tick", *memberTick, "auto_rebalance", *rebalAuto,
			"rebalance_budget", *rebalBudget, "drain_timeout", *drainTimeout)
	}
	addr, err := m.Start(*listen)
	if err != nil {
		fatalf("%v", err)
	}
	fmt.Printf("pawmaster serving %d partitions over %d workers on %s (metadata: %d bytes)\n",
		l.NumPartitions(), len(addrs), addr, rm.MemoryFootprint())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	<-sig
	m.Close()
}

func transportFlag(gob bool) dist.Transport {
	if gob {
		return dist.TransportGob
	}
	return dist.TransportBinary
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "pawmaster: "+format+"\n", args...)
	os.Exit(1)
}
