// Command pawbench regenerates the paper's tables and figures.
//
// Usage:
//
//	pawbench -list
//	pawbench -exp fig16
//	pawbench -exp fig17,fig19 -tpch-rows 240000
//	pawbench -exp all -md > results.md
//
// Every experiment prints the same rows/series as the corresponding table or
// figure of the paper, measured on the scaled synthetic substrates (see
// DESIGN.md for the scaling rules).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"paw/internal/bench"
)

func main() {
	var (
		expFlag      = flag.String("exp", "", "experiment ID, comma-separated list, or \"all\"")
		list         = flag.Bool("list", false, "list available experiments")
		md           = flag.Bool("md", false, "emit markdown tables instead of aligned text")
		tpchRows     = flag.Int("tpch-rows", 0, "override the scaled TPC-H row count")
		osmRows      = flag.Int("osm-rows", 0, "override the scaled OSM row count")
		queries      = flag.Int("queries", 0, "override #Q (total queries; half historical)")
		seed         = flag.Int64("seed", 0, "override the master seed")
		parallelism  = flag.Int("parallelism", 0, "layout-construction workers (0 = all cores, 1 = serial)")
		construction = flag.String("construction", "", "write the construction benchmark (ns/op, allocs/op, speedup at 1/2/4/8 workers) as JSON to this path and exit")
		routing      = flag.String("routing", "", "write the routing benchmark (ns/query, q/s, allocs/query for linear vs indexed range+point routing) as JSON to this path and exit")
		scan         = flag.String("scan", "", "write the columnar-scan benchmark (MB/s, rows/s, bytes skipped, allocs/op, encoded-vs-naive speedup) as JSON to this path and exit")
		serving      = flag.String("serving", "", "write the serving benchmark (qps, p50/p99, saturation point, binary-vs-gob transport speedup over an in-process cluster) as JSON to this path and exit")
		drift        = flag.String("drift", "", "write the drift benchmark (trigger fidelity, recovery time, queries served during migration, offline-rebuild and adaptive baselines over live clusters) as JSON to this path and exit")
		rebalance    = flag.String("rebalance", "", "write the elastic-rebalance benchmark (data moved vs the consistent-hash ideal and query availability through a live join and graceful leave) as JSON to this path and exit")
	)
	flag.Parse()

	if *list {
		for _, e := range bench.Registry() {
			fmt.Printf("%-20s %s\n", e.ID, e.Title)
		}
		return
	}
	cfg := bench.DefaultConfig()
	if *tpchRows > 0 {
		cfg.TPCHRows = *tpchRows
	}
	if *osmRows > 0 {
		cfg.OSMRows = *osmRows
	}
	if *queries > 0 {
		cfg.NumQueries = *queries
	}
	if *seed != 0 {
		cfg.Seed = *seed
	}
	cfg.Parallelism = *parallelism

	if *construction != "" {
		if err := runConstruction(cfg, *construction); err != nil {
			fmt.Fprintf(os.Stderr, "pawbench: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *routing != "" {
		if err := runRouting(cfg, *routing); err != nil {
			fmt.Fprintf(os.Stderr, "pawbench: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *scan != "" {
		if err := runScan(cfg, *scan); err != nil {
			fmt.Fprintf(os.Stderr, "pawbench: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *serving != "" {
		if err := runServing(cfg, *serving); err != nil {
			fmt.Fprintf(os.Stderr, "pawbench: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *drift != "" {
		if err := runDrift(cfg, *drift); err != nil {
			fmt.Fprintf(os.Stderr, "pawbench: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *rebalance != "" {
		if err := runRebalance(cfg, *rebalance); err != nil {
			fmt.Fprintf(os.Stderr, "pawbench: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *expFlag == "" {
		fmt.Fprintln(os.Stderr, "pawbench: use -list to see experiments, -exp <id>|all to run")
		os.Exit(2)
	}

	var exps []bench.Experiment
	if *expFlag == "all" {
		exps = bench.Registry()
	} else {
		for _, id := range strings.Split(*expFlag, ",") {
			e, ok := bench.Find(strings.TrimSpace(id))
			if !ok {
				fmt.Fprintf(os.Stderr, "pawbench: unknown experiment %q (use -list)\n", id)
				os.Exit(2)
			}
			exps = append(exps, e)
		}
	}

	for _, e := range exps {
		start := time.Now()
		tables := e.Run(cfg)
		elapsed := time.Since(start)
		for _, t := range tables {
			if *md {
				fmt.Println(t.Markdown())
			} else {
				fmt.Println(t.Format())
			}
		}
		fmt.Fprintf(os.Stderr, "[%s ran in %v]\n", e.ID, elapsed.Round(time.Millisecond))
	}
}
