package main

import (
	"encoding/json"
	"fmt"
	"os"
	"time"

	"paw/internal/bench"
	"paw/internal/obs"
)

// constructionWorkers is the worker sweep recorded in the construction
// benchmark JSON. Serial (1) must come first: speedups are computed
// against it.
var constructionWorkers = []int{1, 2, 4, 8}

// runConstruction measures layout construction at each worker count and
// writes the machine-readable report (BENCH_construction.json) so the
// performance trajectory is tracked across PRs.
func runConstruction(cfg bench.Config, path string) error {
	rep := bench.ConstructionBench(cfg, constructionWorkers)
	rep.Meta.BuildInfo = obs.BuildVersion()
	rep.Meta.GeneratedAt = time.Now().UTC().Format(time.RFC3339)
	rep.Meta.Host = bench.CurrentHost()
	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "construction benchmark (GOMAXPROCS=%d, %d sample rows, bmin=%d) -> %s\n",
		rep.GOMAXPROCS, rep.SampleRows, rep.MinRows, path)
	for _, r := range rep.Results {
		fmt.Fprintf(os.Stderr, "  %-12s workers=%d  %12d ns/op  %9d allocs/op  %6.2fx\n",
			r.Method, r.Workers, r.NsPerOp, r.AllocsPerOp, r.SpeedupVsSerial)
	}
	return nil
}
