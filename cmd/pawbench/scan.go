package main

import (
	"encoding/json"
	"fmt"
	"os"
	"time"

	"paw/internal/bench"
	"paw/internal/obs"
)

// runScan measures the vectorized columnar scan kernels against the naive
// reference scan (encoded columns, selection vectors, late materialization,
// parallel row groups) and writes the machine-readable report
// (BENCH_scan.json) so kernel throughput is tracked across PRs.
func runScan(cfg bench.Config, path string) error {
	rep := bench.ScanBench(cfg)
	rep.Meta.BuildInfo = obs.BuildVersion()
	rep.Meta.GeneratedAt = time.Now().UTC().Format(time.RFC3339)
	rep.Meta.Host = bench.CurrentHost()
	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "scan benchmark (%d rows, %d groups, %.2fx compression, %v, decode %.0f MB/s) -> %s\n",
		rep.Rows, rep.RowGroups, rep.CompressionRatio, rep.Encodings, rep.DecodeMBPerSec, path)
	for _, r := range rep.Results {
		fmt.Fprintf(os.Stderr, "  %-9s %-16s sel=%.3f  %10d ns/op  %8.0f MB/s  %6.1f allocs/op  read %8d skip %8d  %6.2fx\n",
			r.Family, r.Mode, r.TargetSelectivity, r.NsPerOp, r.MBPerSec, r.AllocsPerOp, r.BytesRead, r.BytesSkipped, r.SpeedupVsNaive)
	}
	return nil
}
