package main

import (
	"encoding/json"
	"fmt"
	"os"
	"time"

	"paw/internal/bench"
	"paw/internal/obs"
)

// runRebalance measures the elastic-membership lifecycle on a live
// in-process cluster — a worker joining over the wire protocol, the
// minimal-movement rebalance onto it, and its graceful drain-and-leave —
// and writes the machine-readable report (BENCH_rebalance.json): data moved
// vs the consistent-hash ideal and query availability through both events.
func runRebalance(cfg bench.Config, path string) error {
	rep, err := bench.RebalanceBench(cfg, bench.RebalanceOptions{})
	if err != nil {
		return err
	}
	rep.Meta.BuildInfo = obs.BuildVersion()
	rep.Meta.GeneratedAt = time.Now().UTC().Format(time.RFC3339)
	rep.Meta.Host = bench.CurrentHost()
	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "rebalance benchmark (%d workers, %d replicas, %d partitions over %d rows) -> %s\n",
		rep.Workers, rep.Replicas, rep.Partitions, rep.Rows, path)
	for _, ev := range rep.Events {
		fmt.Fprintf(os.Stderr, "  %-5s %d->%d workers: moved %d/%d copies (ideal %.1f, ratio %.2f), %d B in %d ms\n",
			ev.Event, ev.WorkersBefore, ev.WorkersAfter, ev.MovedPartitions, ev.TotalCopies,
			ev.IdealMoves, ev.MoveRatio, ev.MovedBytes, ev.RebalanceMillis)
		fmt.Fprintf(os.Stderr, "    availability %.4f (%d queries, %d errors, %d wrong)\n",
			ev.Availability, ev.QueriesDuring, ev.QueryErrors, ev.WrongAnswers)
	}
	return nil
}
