package main

import (
	"encoding/json"
	"fmt"
	"os"
	"time"

	"paw/internal/bench"
	"paw/internal/obs"
)

// runDrift plays the drifting-workload scenario family against live
// in-process clusters with an attached drift controller and writes the
// machine-readable report (BENCH_drift.json): trigger fidelity per scenario,
// cost-regression recovery time, queries served during migration, and the
// offline-rebuild and adaptive (AQWA-style) baselines.
func runDrift(cfg bench.Config, path string) error {
	rep, err := bench.DriftBench(cfg, bench.DriftOptions{})
	if err != nil {
		return err
	}
	rep.Meta.BuildInfo = obs.BuildVersion()
	rep.Meta.GeneratedAt = time.Now().UTC().Format(time.RFC3339)
	rep.Meta.Host = bench.CurrentHost()
	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "drift benchmark (%d workers, window %d, check every %d) -> %s\n",
		rep.Workers, rep.Window, rep.CheckEvery, path)
	for _, sc := range rep.Scenarios {
		verdict := "in scope"
		if sc.Migrated {
			verdict = fmt.Sprintf("migrated at q%d (%d q in flight, %d ms, %d B moved, recovery %d q)",
				sc.MigratedAtQuery, sc.QueriesDuringMigration, sc.MigrationMillis, sc.MovedBytes, sc.RecoveryQueries)
		} else if sc.Triggered {
			verdict = "triggered, not migrated"
		}
		fmt.Fprintf(os.Stderr, "  %-22s %4d queries  %s\n", sc.Scenario, sc.Queries, verdict)
		fmt.Fprintf(os.Stderr, "    cost B/query: baseline %.0f, regressed %.0f, recovered %.0f; patched/offline %.2f; adaptive scanned %d B\n",
			sc.CostBaseline, sc.CostRegressed, sc.CostRecovered, sc.RecoveryVsOffline, sc.AdaptiveScanBytes)
	}
	return nil
}
