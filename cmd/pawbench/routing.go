package main

import (
	"encoding/json"
	"fmt"
	"os"
	"time"

	"paw/internal/bench"
	"paw/internal/obs"
)

// routingWorkers is the worker sweep of the batched routing mode. The
// single-query linear/indexed modes are inherently serial; batch speedups
// compound the index win with the fan-out.
var routingWorkers = []int{1, 2, 4, 8}

// runRouting measures master-side query routing (linear vs indexed vs
// batched; range and point) and writes the machine-readable report
// (BENCH_routing.json) so the performance trajectory is tracked across PRs.
func runRouting(cfg bench.Config, path string) error {
	rep := bench.RoutingBench(cfg, routingWorkers)
	rep.Meta.BuildInfo = obs.BuildVersion()
	rep.Meta.GeneratedAt = time.Now().UTC().Format(time.RFC3339)
	rep.Meta.Host = bench.CurrentHost()
	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "routing benchmark (GOMAXPROCS=%d, %d partitions, index height %d) -> %s\n",
		rep.GOMAXPROCS, rep.Partitions, rep.IndexHeight, path)
	for _, r := range rep.Results {
		fmt.Fprintf(os.Stderr, "  %-14s workers=%d  %8d ns/query  %12.0f q/s  %8.2f allocs/query  %6.2fx\n",
			r.Mode, r.Workers, r.NsPerQuery, r.QueriesPerSec, r.AllocsPerQuery, r.SpeedupVsLinear)
	}
	return nil
}
