package main

import (
	"encoding/json"
	"fmt"
	"os"
	"time"

	"paw/internal/bench"
	"paw/internal/obs"
)

// runServing measures the serving front-end (binary multiplexed transport vs
// the gob baseline over an in-process cluster: single-connection pipelining,
// many-client saturation, p50/p99) and writes the machine-readable report
// (BENCH_serving.json) so serving throughput is tracked across PRs.
func runServing(cfg bench.Config, path string) error {
	rep, err := bench.ServingBench(cfg, bench.ServingOptions{})
	if err != nil {
		return err
	}
	rep.Meta.BuildInfo = obs.BuildVersion()
	rep.Meta.GeneratedAt = time.Now().UTC().Format(time.RFC3339)
	rep.Meta.Host = bench.CurrentHost()
	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "serving benchmark (%d rows, %d workers, %d ms/point) -> %s\n",
		rep.Rows, rep.Workers, rep.PointMillis, path)
	for _, p := range rep.Points {
		fmt.Fprintf(os.Stderr, "  %-6s %-8s c=%-3d  %8.0f q/s  p50 %7.0f us  p99 %7.0f us  (%d queries, %d shared scans)\n",
			p.Transport, p.Mode, p.Concurrency, p.QPS, p.P50Micros, p.P99Micros, p.Queries, p.SharedScans)
	}
	for _, s := range rep.Summaries {
		fmt.Fprintf(os.Stderr, "  %-6s single-client %8.0f q/s  saturation %8.0f q/s @ c=%d (p99 %.0f us)\n",
			s.Transport, s.SingleClientQPS, s.SaturationQPS, s.SaturationConcurrency, s.P99AtSaturationMicros)
	}
	fmt.Fprintf(os.Stderr, "  mux speedup: %.2fx single-client, %.2fx saturation\n",
		rep.MuxSpeedupSingleClient, rep.MuxSpeedupSaturation)
	return nil
}
