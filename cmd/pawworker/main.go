// Command pawworker hosts a share of a partitioned dataset and serves scan
// requests from a pawmaster. Workers take the dataset and layout files
// produced by pawgen; partition ownership is round-robin by convention
// (replica r of partition p lives on worker (p+r) mod workers), so all
// processes agree without coordination. Start every worker and the master
// with the same -replicas value to enable failover.
//
//	pawgen gen -dataset tpch -rows 120000 -out data.pawd
//	pawgen partition -in data.pawd -method paw -layout-out layout.pawl
//	pawworker -data data.pawd -layout layout.pawl -index 0 -workers 2 -listen 127.0.0.1:7101 &
//	pawworker -data data.pawd -layout layout.pawl -index 1 -workers 2 -listen 127.0.0.1:7102 &
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"

	"paw/internal/blockstore"
	"paw/internal/dataset"
	"paw/internal/dist"
	"paw/internal/layout"
	"paw/internal/obs"
)

func main() {
	var (
		dataPath   = flag.String("data", "", "dataset file (.pawd)")
		layoutPath = flag.String("layout", "", "layout file (.pawl)")
		index      = flag.Int("index", 0, "this worker's index")
		workers    = flag.Int("workers", 1, "total worker count")
		replicas   = flag.Int("replicas", 1, "copies per partition; this worker hosts partition p when (p+r) mod workers == index for some r < replicas (match pawmaster)")
		listen     = flag.String("listen", "127.0.0.1:0", "listen address")
		metrics    = flag.String("metrics", "", "serve /metrics, /healthz, /readyz and /debug/pprof on this address; empty disables")
		logLevel   = flag.String("log-level", "info", "log level: debug, info, warn, error")
	)
	flag.Parse()
	if _, err := obs.SetupLogger(*logLevel); err != nil {
		fatalf("%v", err)
	}
	if *dataPath == "" || *layoutPath == "" {
		fatalf("-data and -layout are required")
	}
	if *index < 0 || *index >= *workers {
		fatalf("index %d out of range for %d workers", *index, *workers)
	}
	if *replicas < 1 || *replicas > *workers {
		fatalf("-replicas %d out of range for %d workers", *replicas, *workers)
	}
	data := loadData(*dataPath)
	l := loadLayout(*layoutPath)
	store := blockstore.Materialize(l, data, blockstore.Config{})

	var mine []layout.ID
	for _, p := range l.Parts {
		for r := 0; r < *replicas; r++ {
			if (int(p.ID)+r)%*workers == *index {
				mine = append(mine, p.ID)
				break
			}
		}
	}
	w := dist.NewWorker(store, mine)
	if *metrics != "" {
		reg := obs.New()
		w.SetMetrics(reg)
		srv, err := obs.ServeWith(*metrics, reg, map[string]http.Handler{
			"/healthz": obs.Healthz(),
			"/readyz":  obs.Readyz(w.Ready),
		})
		if err != nil {
			fatalf("metrics listener: %v", err)
		}
		defer srv.Close()
		slog.Info("telemetry enabled", "metrics", "http://"+srv.Addr()+"/metrics")
	}
	addr, err := w.Start(*listen)
	if err != nil {
		fatalf("%v", err)
	}
	fmt.Printf("pawworker %d/%d serving %d partitions on %s\n", *index, *workers, len(mine), addr)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	<-sig
	w.Close()
}

func loadData(path string) *dataset.Dataset {
	f, err := os.Open(path)
	if err != nil {
		fatalf("%v", err)
	}
	defer f.Close()
	d, err := dataset.Read(f)
	if err != nil {
		fatalf("reading %s: %v", path, err)
	}
	return d
}

func loadLayout(path string) *layout.Layout {
	f, err := os.Open(path)
	if err != nil {
		fatalf("%v", err)
	}
	defer f.Close()
	l, err := layout.Decode(f)
	if err != nil {
		fatalf("reading %s: %v", path, err)
	}
	return l
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "pawworker: "+format+"\n", args...)
	os.Exit(1)
}
