// Command pawworker hosts a share of a partitioned dataset and serves scan
// requests from a pawmaster. Workers take the dataset and layout files
// produced by pawgen; partition ownership follows the placement rule named
// by -placement — "mod" (replica r of partition p on worker (p+r) mod
// workers, the legacy convention) or "ring" (consistent hashing, the rule
// elastic clusters rebalance to) — so all processes agree without
// coordination. Start every worker and the master with the same -placement,
// -replicas and -vnodes values.
//
//	pawgen gen -dataset tpch -rows 120000 -out data.pawd
//	pawgen partition -in data.pawd -method paw -layout-out layout.pawl
//	pawworker -data data.pawd -layout layout.pawl -index 0 -workers 2 -listen 127.0.0.1:7101 &
//	pawworker -data data.pawd -layout layout.pawl -index 1 -workers 2 -listen 127.0.0.1:7102 &
//
// With -join the worker registers with a membership-enabled master
// (pawmaster -membership) instead of assuming a static fleet: the join
// handshake carries a checksum of the partitions this worker derived, the
// master rejects the join if its own placement disagrees, and a background
// heartbeat (-heartbeat-every) keeps the worker alive in the master's
// failure detector. A worker started with -join and NO -data/-layout is a
// fresh scale-out node: it joins empty and receives partitions through the
// master's live rebalancing. On SIGINT a joined worker asks for a graceful
// leave — the master drains its partitions before the process exits.
//
//	pawworker -join 127.0.0.1:7100 -listen 127.0.0.1:7103 &
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"time"

	"paw/internal/blockstore"
	"paw/internal/dataset"
	"paw/internal/dist"
	"paw/internal/layout"
	"paw/internal/membership"
	"paw/internal/obs"
)

func main() {
	var (
		dataPath   = flag.String("data", "", "dataset file (.pawd); optional with -join (a fresh joiner starts empty)")
		layoutPath = flag.String("layout", "", "layout file (.pawl); optional with -join")
		index      = flag.Int("index", -1, "this worker's slot (-1 with -join: the master assigns one)")
		workers    = flag.Int("workers", 1, "total worker count the static placement is derived over")
		replicas   = flag.Int("replicas", 1, "copies per partition (match pawmaster)")
		placeRule  = flag.String("placement", "mod", "placement rule deriving this worker's partitions: mod or ring (match pawmaster)")
		vnodes     = flag.Int("vnodes", membership.DefaultVNodes, "virtual nodes per worker for -placement ring (match pawmaster)")
		listen     = flag.String("listen", "127.0.0.1:0", "listen address")
		metrics    = flag.String("metrics", "", "serve /metrics, /healthz, /readyz and /debug/pprof on this address; empty disables")
		logLevel   = flag.String("log-level", "info", "log level: debug, info, warn, error")

		joinAddr  = flag.String("join", "", "master client address to join (elastic membership; empty: static fleet, no handshake)")
		advertise = flag.String("advertise", "", "scan-serving address to advertise in the join handshake (default: the bound -listen address)")
		beatEvery = flag.Duration("heartbeat-every", 500*time.Millisecond, "heartbeat period once joined")
		leaveWait = flag.Duration("leave-timeout", 2*time.Minute, "how long SIGINT waits for the master to drain this worker before exiting anyway")
	)
	flag.Parse()
	if _, err := obs.SetupLogger(*logLevel); err != nil {
		fatalf("%v", err)
	}
	fresh := *dataPath == "" && *layoutPath == ""
	if fresh && *joinAddr == "" {
		fatalf("-data and -layout are required (only a -join worker may start empty)")
	}
	if !fresh && (*dataPath == "" || *layoutPath == "") {
		fatalf("-data and -layout go together")
	}

	var (
		w    *dist.Worker
		mine []layout.ID
	)
	if fresh {
		w = dist.NewWorker(nil, nil)
	} else {
		if *index < 0 || *index >= *workers {
			fatalf("index %d out of range for %d workers (a worker with data needs its slot; only fresh -join workers omit -index)", *index, *workers)
		}
		if *replicas < 1 || *replicas > *workers {
			fatalf("-replicas %d out of range for %d workers", *replicas, *workers)
		}
		data := loadData(*dataPath)
		l := loadLayout(*layoutPath)
		store := blockstore.Materialize(l, data, blockstore.Config{})
		rep, err := placementFor(l, *placeRule, *workers, *replicas, *vnodes)
		if err != nil {
			fatalf("%v", err)
		}
		mine = membership.HostedIDs(rep, *index)
		w = dist.NewWorker(store, mine)
	}

	if *metrics != "" {
		reg := obs.New()
		w.SetMetrics(reg)
		srv, err := obs.ServeWith(*metrics, reg, map[string]http.Handler{
			"/healthz": obs.Healthz(),
			"/readyz":  obs.Readyz(w.Ready),
		})
		if err != nil {
			fatalf("metrics listener: %v", err)
		}
		defer srv.Close()
		slog.Info("telemetry enabled", "metrics", "http://"+srv.Addr()+"/metrics")
	}
	addr, err := w.Start(*listen)
	if err != nil {
		fatalf("%v", err)
	}
	fmt.Printf("pawworker %d/%d serving %d partitions on %s\n", *index, *workers, len(mine), addr)

	// Elastic mode: join handshake (the checksum proves master and worker
	// derived the same partition set), then heartbeats until shutdown.
	var hb *dist.Heartbeater
	if *joinAddr != "" {
		adv := *advertise
		if adv == "" {
			adv = addr
		}
		hb = dist.NewHeartbeater(*joinAddr, dist.TransportBinary)
		// Fleets come up in any order: retry a refused join until the deadline
		// so workers started before the master still converge. A checksum
		// rejection is not retried — no amount of waiting fixes disagreeing
		// flags.
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		resp, err := hb.Join(ctx, *index, adv, membership.Checksum(mine))
		for err != nil && ctx.Err() == nil && !strings.Contains(err.Error(), "digest") {
			time.Sleep(500 * time.Millisecond)
			resp, err = hb.Join(ctx, *index, adv, membership.Checksum(mine))
		}
		cancel()
		if err != nil {
			fatalf("joining %s: %v", *joinAddr, err)
		}
		hb.Start(*beatEvery)
		slog.Info("joined cluster", "master", *joinAddr, "slot", resp.Index,
			"epoch", resp.Epoch, "advertise", adv)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	<-sig
	if hb != nil {
		// Graceful leave: the master drains this worker's partitions onto the
		// rest of the fleet before we stop serving. A refused or timed-out
		// drain is logged and the worker exits anyway — the failure detector
		// and a forced rebalance recover the data from the replicas.
		ctx, cancel := context.WithTimeout(context.Background(), *leaveWait)
		if _, err := hb.Leave(ctx); err != nil {
			slog.Warn("graceful leave failed, exiting undrained", "err", err)
		} else {
			slog.Info("drained and left the cluster")
		}
		cancel()
		hb.Close()
	}
	w.Close()
}

// placementFor derives the shared placement of the static fleet under the
// named rule — the same derivation pawmaster runs, so the join checksum only
// matches when every flag agrees.
func placementFor(l *layout.Layout, rule string, workers, replicas, vnodes int) (rep map[layout.ID][]int, err error) {
	ids := make([]layout.ID, len(l.Parts))
	for i, p := range l.Parts {
		ids[i] = p.ID
	}
	switch rule {
	case "mod":
		return membership.ModPlacement(ids, workers, replicas), nil
	case "ring":
		all := make([]int, workers)
		for i := range all {
			all[i] = i
		}
		return membership.RingPlacement(ids, all, replicas, vnodes), nil
	default:
		return nil, fmt.Errorf("unknown -placement %q (want mod or ring)", rule)
	}
}

func loadData(path string) *dataset.Dataset {
	f, err := os.Open(path)
	if err != nil {
		fatalf("%v", err)
	}
	defer f.Close()
	d, err := dataset.Read(f)
	if err != nil {
		fatalf("reading %s: %v", path, err)
	}
	return d
}

func loadLayout(path string) *layout.Layout {
	f, err := os.Open(path)
	if err != nil {
		fatalf("%v", err)
	}
	defer f.Close()
	l, err := layout.Decode(f)
	if err != nil {
		fatalf("reading %s: %v", path, err)
	}
	return l
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "pawworker: "+format+"\n", args...)
	os.Exit(1)
}
