package main

import (
	"flag"
	"fmt"
	"os"

	"paw/internal/invariant"
	"paw/internal/layout"
)

// runCheck implements `pawcli check [-seed N] <layout-file>...`: it decodes
// each persisted layout and runs the sealed-layout oracle subset of
// internal/invariant (partition geometry, grouped-split semantics, routing
// and descriptor soundness). Construction inputs are gone for a persisted
// layout, so the workload-dependent oracles (Lemma 1, monotonicity, bmin)
// are not applicable here — they run in the simulation harness.
//
// Exit status: 0 when every layout passes, 1 when any invariant is violated
// or a file cannot be read.
func runCheck(args []string) {
	fs := flag.NewFlagSet("check", flag.ExitOnError)
	seed := fs.Int64("seed", 1, "seed for the sampled geometry and routing probes")
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: pawcli check [-seed N] <layout-file>...")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		os.Exit(1)
	}
	if fs.NArg() == 0 {
		fs.Usage()
		os.Exit(1)
	}
	failed := false
	for _, path := range fs.Args() {
		if err := checkFile(path, *seed); err != nil {
			fmt.Fprintf(os.Stderr, "pawcli check: %s: %v\n", path, err)
			failed = true
			continue
		}
		fmt.Printf("%s: ok\n", path)
	}
	if failed {
		os.Exit(1)
	}
}

func checkFile(path string, seed int64) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	l, err := layout.Decode(f)
	if err != nil {
		return fmt.Errorf("decode: %w", err)
	}
	if err := invariant.CheckSealed(l, seed); err != nil {
		return err
	}
	fmt.Printf("%s: %s, index height %d\n", path, l, l.IndexHeight())
	return nil
}
