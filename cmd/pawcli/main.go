// Command pawcli is an end-to-end driver for the full PAW stack: it
// generates a dataset, builds a partition layout, materialises it into the
// simulated block store, and then answers SQL queries through the Fig. 4
// pipeline — rewriter → router → partition scans on the simulated cluster.
//
// One-shot:
//
//	pawcli -dataset tpch -rows 120000 -method paw \
//	       -sql "SELECT * FROM lineitem WHERE l_quantity >= 10 AND l_quantity <= 20"
//
// REPL (reads one SQL statement per line):
//
//	pawcli -dataset osm -method paw
//
// Build a layout with telemetry enabled and emit a structured build report
// (phase timings, Alg. 1–3 split statistics, tree shape, cost decomposition),
// then render it:
//
//	pawcli build -dataset tpch -rows 120000 -method paw -report build_report.json
//	pawcli stats build_report.json
//
// Validate a persisted layout (written by pawgen) against the paper's
// sealed-layout invariants — partition geometry, grouped-split semantics and
// routing-index soundness (internal/invariant):
//
//	pawcli check layout.pawl
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"paw/internal/blockstore"
	"paw/internal/cluster"
	"paw/internal/core"
	"paw/internal/dataset"
	"paw/internal/kdtree"
	"paw/internal/layout"
	"paw/internal/obs"
	"paw/internal/qdtree"
	"paw/internal/router"
	"paw/internal/workload"
)

func main() {
	if len(os.Args) > 1 {
		switch os.Args[1] {
		case "check":
			runCheck(os.Args[2:])
			return
		case "build":
			runBuild(os.Args[2:])
			return
		case "stats":
			runStats(os.Args[2:])
			return
		}
	}
	var (
		ds       = flag.String("dataset", "tpch", "dataset: tpch or osm")
		method   = flag.String("method", "paw", "method: paw, qd-tree or kd-tree")
		rows     = flag.Int("rows", 120000, "dataset rows")
		queries  = flag.Int("queries", 50, "historical query count used to build the layout")
		deltaPct = flag.Float64("delta", 1.0, "δ as %% of the domain")
		sql      = flag.String("sql", "", "one-shot SQL statement (empty: REPL on stdin)")
		seed     = flag.Int64("seed", 7, "generator seed")
		logLevel = flag.String("log-level", "info", "log level: debug, info, warn, error")
	)
	flag.Parse()
	if _, err := obs.SetupLogger(*logLevel); err != nil {
		fatalf("%v", err)
	}

	var data *dataset.Dataset
	switch *ds {
	case "tpch":
		data = dataset.TPCHLike(*rows, *seed)
	case "osm":
		data = dataset.OSMLike(*rows, 10, *seed)
	default:
		fatalf("unknown dataset %q", *ds)
	}
	dom := data.Domain()
	hist := workload.Uniform(dom, workload.Defaults(*queries, *seed+1))
	// δ as a fraction of the largest domain extent (datasets here are not
	// normalized so SQL predicates keep their natural units).
	maxExtent := 0.0
	for d := 0; d < dom.Dims(); d++ {
		if e := dom.Hi[d] - dom.Lo[d]; e > maxExtent {
			maxExtent = e
		}
	}
	delta := *deltaPct / 100 * maxExtent

	sample := data.Sample(*rows/10, *seed+2)
	minRows := len(sample) / 600
	if minRows < 2 {
		minRows = 2
	}
	fmt.Printf("building %s layout over %d rows (%d-row sample, bmin=%d sample rows)...\n",
		*method, data.NumRows(), len(sample), minRows)
	start := time.Now()
	var l *layout.Layout
	switch *method {
	case "paw":
		l = core.Build(data, sample, dom, hist, core.Params{MinRows: minRows, Delta: delta, DataAwareRefine: true})
	case "qd-tree":
		l = qdtree.Build(data, sample, dom, hist.Boxes(), qdtree.Params{MinRows: minRows})
	case "kd-tree":
		l = kdtree.Build(data, sample, dom, kdtree.Params{MinRows: minRows})
	default:
		fatalf("unknown method %q", *method)
	}
	store := blockstore.Materialize(l, data, blockstore.Config{})
	clus := cluster.New(cluster.Defaults(), store, l)
	master, err := router.NewMaster(l, data.Names())
	if err != nil {
		fatalf("%v", err)
	}
	fmt.Printf("%s ready in %v: %d partitions over %d blocks; columns: %s\n",
		l, time.Since(start).Round(time.Millisecond), l.NumPartitions(), store.TotalBlocks(),
		strings.Join(data.Names(), ", "))

	run := func(stmt string) {
		plan, err := master.RouteSQL(stmt)
		if err != nil {
			fmt.Printf("error: %v\n", err)
			return
		}
		ids := plan.PartitionIDs()
		var agg cluster.Result
		for _, rp := range plan.Ranges {
			res, err := clus.Query(rp.Range, idsForRange(rp, ids))
			if err != nil {
				fmt.Printf("error: %v\n", err)
				return
			}
			agg.Rows += res.Rows
			agg.BytesScanned += res.BytesScanned
			agg.BytesNominal += res.BytesNominal
			if res.Elapsed > agg.Elapsed {
				agg.Elapsed = res.Elapsed
			}
		}
		fmt.Printf("%d sub-queries, %d partitions: %d rows, %.2f MB nominal I/O, %.2f MB after pruning, %v simulated\n",
			len(plan.Ranges), len(ids), agg.Rows,
			float64(agg.BytesNominal)/1e6, float64(agg.BytesScanned)/1e6, agg.Elapsed.Round(time.Microsecond))
	}

	if *sql != "" {
		run(*sql)
		return
	}
	fmt.Println(`enter SQL (e.g. SELECT * FROM t WHERE l_quantity >= 10 AND l_shipdate <= 400), ctrl-D to exit`)
	sc := bufio.NewScanner(os.Stdin)
	for {
		fmt.Print("paw> ")
		if !sc.Scan() {
			fmt.Println()
			return
		}
		stmt := strings.TrimSpace(sc.Text())
		if stmt == "" {
			continue
		}
		if strings.EqualFold(stmt, "exit") || strings.EqualFold(stmt, "quit") {
			return
		}
		run(stmt)
	}
}

// idsForRange returns the partitions to scan for one rewritten range: the
// range's own list (extras are not materialised in this CLI).
func idsForRange(rp router.RangePlan, union []layout.ID) []layout.ID {
	if len(rp.Parts) > 0 {
		return rp.Parts
	}
	_ = union
	return nil
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "pawcli: "+format+"\n", args...)
	os.Exit(1)
}
