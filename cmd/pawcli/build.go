package main

import (
	"flag"
	"fmt"
	"log/slog"
	"os"
	"time"

	"paw/internal/core"
	"paw/internal/dataset"
	"paw/internal/kdtree"
	"paw/internal/layout"
	"paw/internal/obs"
	"paw/internal/qdtree"
	"paw/internal/workload"
)

// runBuild implements `pawcli build`: construct a layout with telemetry
// enabled and emit a layout.BuildReport (JSON) plus, optionally, the sealed
// layout itself. The pipeline phases — generate, sample, construct, route,
// report — are timed as sequential spans, so their sum explains the wall
// time (`pawcli stats` prints the coverage; the acceptance bar is >= 90%).
func runBuild(args []string) {
	fs := flag.NewFlagSet("build", flag.ExitOnError)
	var (
		ds       = fs.String("dataset", "tpch", "dataset: tpch or osm")
		method   = fs.String("method", "paw", "method: paw, qd-tree or kd-tree")
		rows     = fs.Int("rows", 120000, "dataset rows")
		queries  = fs.Int("queries", 50, "historical query count used to build the layout")
		deltaPct = fs.Float64("delta", 1.0, "δ as %% of the domain")
		seed     = fs.Int64("seed", 7, "generator seed")
		parallel = fs.Int("parallelism", 0, "construction workers (0 = GOMAXPROCS)")
		report   = fs.String("report", "build_report.json", "build report output path (- for stdout)")
		layoutF  = fs.String("layout", "", "also persist the sealed layout to this path")
		logLevel = fs.String("log-level", "info", "log level: debug, info, warn, error")
	)
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: pawcli build [flags]")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		os.Exit(1)
	}
	if _, err := obs.SetupLogger(*logLevel); err != nil {
		fatalf("%v", err)
	}

	reg := obs.New()
	wallStart := time.Now()
	var phases []layout.Phase
	phase := func(name string, f func()) {
		t0 := time.Now()
		f()
		d := time.Since(t0)
		phases = append(phases, layout.Phase{Name: name, Ns: d.Nanoseconds()})
		slog.Debug("phase done", "phase", name, "elapsed", d)
	}

	var data *dataset.Dataset
	var hist workload.Workload
	var delta float64
	phase("generate", func() {
		switch *ds {
		case "tpch":
			data = dataset.TPCHLike(*rows, *seed)
		case "osm":
			data = dataset.OSMLike(*rows, 10, *seed)
		default:
			fatalf("unknown dataset %q", *ds)
		}
		dom := data.Domain()
		hist = workload.Uniform(dom, workload.Defaults(*queries, *seed+1))
		maxExtent := 0.0
		for d := 0; d < dom.Dims(); d++ {
			if e := dom.Hi[d] - dom.Lo[d]; e > maxExtent {
				maxExtent = e
			}
		}
		delta = *deltaPct / 100 * maxExtent
	})

	var sample []int
	var minRows int
	phase("sample", func() {
		sample = data.Sample(*rows/10, *seed+2)
		minRows = len(sample) / 600
		if minRows < 2 {
			minRows = 2
		}
	})
	slog.Info("building layout", "method", *method, "rows", data.NumRows(),
		"sample", len(sample), "bmin", minRows, "delta", delta)

	var l *layout.Layout
	phase("construct", func() {
		switch *method {
		case "paw":
			l = core.Build(data, sample, data.Domain(), hist, core.Params{
				MinRows: minRows, Delta: delta, DataAwareRefine: true,
				Parallelism: *parallel, Obs: reg,
			})
		case "qd-tree":
			l = qdtree.Build(data, sample, data.Domain(), hist.Boxes(),
				qdtree.Params{MinRows: minRows, Parallelism: *parallel, Obs: reg})
		case "kd-tree":
			l = kdtree.Build(data, sample, data.Domain(),
				kdtree.Params{MinRows: minRows, Parallelism: *parallel, Obs: reg})
		default:
			fatalf("unknown method %q", *method)
		}
	})

	phase("route", func() {
		l.Route(data)
	})

	var r *layout.BuildReport
	phase("report", func() {
		r = layout.NewBuildReport(l, reg.Snapshot())
		r.SampleRows = len(sample)
		wc := l.WorkloadCost(hist.Boxes(), nil)
		r.Cost = &layout.CostStats{
			WorkloadQueries: len(hist),
			WorkloadBytes:   wc,
			AvgQueryBytes:   l.AvgCost(hist.Boxes(), nil),
			ScanRatio:       l.ScanRatio(hist.Boxes(), nil),
		}
		if *layoutF != "" {
			f, err := os.Create(*layoutF)
			if err != nil {
				fatalf("%v", err)
			}
			if err := l.Encode(f); err != nil {
				fatalf("writing layout: %v", err)
			}
			if err := f.Close(); err != nil {
				fatalf("%v", err)
			}
		}
	})

	r.BuildInfo = obs.BuildVersion()
	r.GeneratedAt = time.Now().UTC().Format(time.RFC3339)
	r.WallNs = time.Since(wallStart).Nanoseconds()
	r.Phases = phases

	if *report == "-" {
		if err := r.WriteJSON(os.Stdout); err != nil {
			fatalf("%v", err)
		}
	} else {
		if err := r.WriteJSONFile(*report); err != nil {
			fatalf("writing report: %v", err)
		}
		fmt.Printf("%s: %d partitions in %v (phase coverage %.1f%%) -> %s\n",
			l, l.NumPartitions(), time.Duration(r.WallNs).Round(time.Millisecond),
			100*r.PhaseCoverage(), *report)
	}
	slog.Info("build complete", "partitions", l.NumPartitions(),
		"wall", time.Duration(r.WallNs), "coverage", r.PhaseCoverage())
}

// runStats implements `pawcli stats <report.json>...`: render build reports
// written by `pawcli build` or pawbench.
func runStats(args []string) {
	fs := flag.NewFlagSet("stats", flag.ExitOnError)
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: pawcli stats <build-report.json>...")
	}
	if err := fs.Parse(args); err != nil {
		os.Exit(1)
	}
	if fs.NArg() == 0 {
		fs.Usage()
		os.Exit(1)
	}
	for i, path := range fs.Args() {
		if i > 0 {
			fmt.Println()
		}
		f, err := os.Open(path)
		if err != nil {
			fatalf("%v", err)
		}
		r, err := layout.ReadBuildReport(f)
		f.Close()
		if err != nil {
			fatalf("%s: %v", path, err)
		}
		if fs.NArg() > 1 {
			fmt.Printf("== %s ==\n", path)
		}
		r.Render(os.Stdout)
	}
}
