// Command pawgen generates, inspects and partitions dataset files, wiring
// together the on-disk formats: PAWD datasets, PAWC columnar tables and PAWL
// layout metadata.
//
//	pawgen gen -dataset tpch -rows 120000 -out lineitem.pawd
//	pawgen info -in lineitem.pawd
//	pawgen partition -in lineitem.pawd -method paw -queries 50 -layout-out layout.pawl
//	pawgen layout-info -in layout.pawl
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"paw/internal/core"
	"paw/internal/dataset"
	"paw/internal/histogram"
	"paw/internal/kdtree"
	"paw/internal/layout"
	"paw/internal/qdtree"
	"paw/internal/workload"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "gen":
		cmdGen(os.Args[2:])
	case "info":
		cmdInfo(os.Args[2:])
	case "partition":
		cmdPartition(os.Args[2:])
	case "layout-info":
		cmdLayoutInfo(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `pawgen <command>:
  gen          generate a dataset file (-dataset tpch|osm|uniform -rows N -out F)
  info         describe a dataset file (-in F)
  partition    build and save a layout (-in F -method paw|qd-tree|kd-tree -layout-out F)
  layout-info  describe a layout file (-in F)`)
	os.Exit(2)
}

func cmdGen(args []string) {
	fs := flag.NewFlagSet("gen", flag.ExitOnError)
	ds := fs.String("dataset", "tpch", "tpch, osm or uniform")
	rows := fs.Int("rows", 120000, "row count")
	dims := fs.Int("dims", 4, "dimensions (uniform only)")
	seed := fs.Int64("seed", 1, "generator seed")
	out := fs.String("out", "data.pawd", "output path")
	normalize := fs.Bool("normalize", false, "normalize attributes to [0,1]")
	mustParse(fs, args)

	var data *dataset.Dataset
	switch *ds {
	case "tpch":
		data = dataset.TPCHLike(*rows, *seed)
	case "osm":
		data = dataset.OSMLike(*rows, 10, *seed)
	case "uniform":
		data = dataset.Uniform(*rows, *dims, *seed)
	default:
		fatalf("unknown dataset %q", *ds)
	}
	if *normalize {
		data = data.Normalize()
	}
	f, err := os.Create(*out)
	if err != nil {
		fatalf("%v", err)
	}
	defer f.Close()
	if strings.HasSuffix(*out, ".csv") {
		if err := data.WriteCSV(f); err != nil {
			fatalf("writing %s: %v", *out, err)
		}
		fmt.Printf("wrote %s: %d rows x %d attrs (CSV)\n", *out, data.NumRows(), data.Dims())
		return
	}
	n, err := data.WriteTo(f)
	if err != nil {
		fatalf("writing %s: %v", *out, err)
	}
	fmt.Printf("wrote %s: %d rows x %d attrs, %d bytes on disk\n", *out, data.NumRows(), data.Dims(), n)
}

// loadDataset reads .csv files as CSV and everything else as PAWD binary.
func loadDataset(path string) *dataset.Dataset {
	f, err := os.Open(path)
	if err != nil {
		fatalf("%v", err)
	}
	defer f.Close()
	var data *dataset.Dataset
	if strings.HasSuffix(path, ".csv") {
		data, err = dataset.ReadCSV(f)
	} else {
		data, err = dataset.Read(f)
	}
	if err != nil {
		fatalf("reading %s: %v", path, err)
	}
	return data
}

func cmdInfo(args []string) {
	fs := flag.NewFlagSet("info", flag.ExitOnError)
	in := fs.String("in", "", "dataset file")
	buckets := fs.Int("buckets", 16, "histogram buckets for the per-column profile")
	mustParse(fs, args)
	if *in == "" {
		fatalf("info: -in is required")
	}
	data := loadDataset(*in)
	dom := data.Domain()
	fmt.Printf("%s: %d rows, %d attributes, %d bytes simulated\n", *in, data.NumRows(), data.Dims(), data.TotalBytes())
	h, err := histogram.Build(data, nil, *buckets)
	if err != nil {
		fatalf("%v", err)
	}
	fmt.Printf("histogram: %d buckets/dim, %d bytes\n", h.Buckets(), h.MemoryBytes())
	for d, name := range data.Names() {
		fmt.Printf("  %-18s [%g, %g]\n", name, dom.Lo[d], dom.Hi[d])
	}
}

func cmdPartition(args []string) {
	fs := flag.NewFlagSet("partition", flag.ExitOnError)
	in := fs.String("in", "", "dataset file")
	method := fs.String("method", "paw", "paw, qd-tree or kd-tree")
	queries := fs.Int("queries", 50, "historical query count")
	deltaPct := fs.Float64("delta", 1.0, "δ as %% of the domain (paw)")
	blocks := fs.Int("blocks", 600, "target block count (sets bmin)")
	seed := fs.Int64("seed", 2, "workload seed")
	layoutOut := fs.String("layout-out", "layout.pawl", "layout output path")
	queriesOut := fs.String("queries-out", "", "also save the historical workload as a query log (.pawq) — pawmaster's -drift-hist reference")
	mustParse(fs, args)
	if *in == "" {
		fatalf("partition: -in is required")
	}
	data := loadDataset(*in)
	dom := data.Domain()
	hist := workload.Uniform(dom, workload.Defaults(*queries, *seed))
	sample := data.Sample(data.NumRows()/10, *seed+1)
	minRows := len(sample) / *blocks
	if minRows < 2 {
		minRows = 2
	}
	delta := *deltaPct / 100 * (dom.Hi[0] - dom.Lo[0])

	var l *layout.Layout
	switch *method {
	case "paw":
		l = core.Build(data, sample, dom, hist, core.Params{MinRows: minRows, Delta: delta})
	case "qd-tree":
		l = qdtree.Build(data, sample, dom, hist.Boxes(), qdtree.Params{MinRows: minRows})
	case "kd-tree":
		l = kdtree.Build(data, sample, dom, kdtree.Params{MinRows: minRows})
	default:
		fatalf("unknown method %q", *method)
	}
	l.Route(data)
	f, err := os.Create(*layoutOut)
	if err != nil {
		fatalf("%v", err)
	}
	defer f.Close()
	if err := l.Encode(f); err != nil {
		fatalf("writing %s: %v", *layoutOut, err)
	}
	fmt.Printf("wrote %s: %s\n", *layoutOut, l)
	if *queriesOut != "" {
		var qlog workload.Log
		for _, q := range hist {
			qlog.Record(q.Box)
		}
		qf, err := os.Create(*queriesOut)
		if err != nil {
			fatalf("%v", err)
		}
		defer qf.Close()
		if err := qlog.Encode(qf); err != nil {
			fatalf("writing %s: %v", *queriesOut, err)
		}
		fmt.Printf("wrote %s: %d historical queries\n", *queriesOut, qlog.Len())
	}
}

func cmdLayoutInfo(args []string) {
	fs := flag.NewFlagSet("layout-info", flag.ExitOnError)
	in := fs.String("in", "", "layout file")
	mustParse(fs, args)
	if *in == "" {
		fatalf("layout-info: -in is required")
	}
	f, err := os.Open(*in)
	if err != nil {
		fatalf("%v", err)
	}
	defer f.Close()
	l, err := layout.Decode(f)
	if err != nil {
		fatalf("reading %s: %v", *in, err)
	}
	fmt.Println(l)
	var minRows, maxRows int64 = 1 << 62, 0
	irr := 0
	for _, p := range l.Parts {
		if p.FullRows < minRows {
			minRows = p.FullRows
		}
		if p.FullRows > maxRows {
			maxRows = p.FullRows
		}
		if p.Desc.Kind() == layout.KindIrregular {
			irr++
		}
	}
	fmt.Printf("partitions: %d (%d irregular); rows per partition: min %d, max %d\n",
		l.NumPartitions(), irr, minRows, maxRows)
}

func mustParse(fs *flag.FlagSet, args []string) {
	if err := fs.Parse(args); err != nil {
		os.Exit(2)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "pawgen: "+format+"\n", args...)
	os.Exit(1)
}
