// Command pawsql is the SQL client for a pawmaster: one-shot with -sql, a
// REPL reading statements from stdin, or a quick closed-loop load driver
// with -concurrency.
//
//	pawsql -connect 127.0.0.1:7100 -sql "SELECT * FROM t WHERE l_quantity >= 10"
//	pawsql -connect 127.0.0.1:7100 -sql "SELECT * FROM t WHERE l_quantity >= 10" -explain
//	pawsql -connect 127.0.0.1:7100 -timeout 2s -partial
//	pawsql -connect 127.0.0.1:7100 -sql "SELECT * FROM t" -concurrency 16 -duration 10s
//
// -explain runs the statement as EXPLAIN ANALYZE: the master forces a trace
// (even with tracing disabled) and the client renders the returned span tree
// — routing, per-range scatter, per-attempt RPCs, and each touched worker's
// per-partition scan spans with rows/bytes/zone-skipping/encoding-mix detail.
//
// Load mode speaks the multiplexed binary protocol: all in-flight queries
// pipeline over one connection, so the driver measures the serving path, not
// a per-connection handshake.
package main

import (
	"bufio"
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"paw/internal/dist"
	"paw/internal/trace"
)

func main() {
	var (
		connect     = flag.String("connect", "127.0.0.1:7100", "master address")
		sql         = flag.String("sql", "", "one-shot SQL statement (empty: REPL)")
		explain     = flag.Bool("explain", false, "EXPLAIN ANALYZE: run the statement with a forced trace and print its span tree")
		timeout     = flag.Duration("timeout", 0, "per-query deadline, shipped to the master and enforced on every worker scan (0: master default)")
		partial     = flag.Bool("partial", false, "accept partial results when partitions are unreachable (failed partitions are reported)")
		concurrency = flag.Int("concurrency", 0, "load mode: run -sql from this many goroutines over one multiplexed connection and report qps/p50/p99")
		duration    = flag.Duration("duration", 10*time.Second, "load mode: measurement window (with -concurrency)")
	)
	flag.Parse()

	if *concurrency > 0 {
		if *sql == "" {
			fatalf("-concurrency requires -sql")
		}
		if err := runLoad(*connect, *sql, *partial, *timeout, *concurrency, *duration); err != nil {
			fatalf("%v", err)
		}
		return
	}

	c, err := dist.Dial(*connect)
	if err != nil {
		fatalf("%v", err)
	}
	defer c.Close()
	c.SetAllowPartial(*partial)

	run := func(stmt string) {
		ctx := context.Background()
		cancel := context.CancelFunc(func() {})
		if *timeout > 0 {
			ctx, cancel = context.WithTimeout(ctx, *timeout)
		}
		start := time.Now()
		var resp dist.QueryResponse
		var err error
		if *explain {
			resp, err = c.Explain(ctx, stmt)
		} else {
			resp, err = c.QueryContext(ctx, stmt)
		}
		wall := time.Since(start)
		cancel()
		if err != nil {
			fmt.Printf("error: %v\n", err)
			if errors.Is(err, context.DeadlineExceeded) {
				// The deadline interrupted the exchange mid-message; the gob
				// stream is poisoned and must be re-established.
				fatalf("connection poisoned by the deadline; re-run pawsql")
			}
			return
		}
		if *explain {
			trace.WriteTree(os.Stdout, resp.TraceID, resp.Spans)
		}
		fmt.Printf("%d rows (%d sub-queries, %d partitions, %.2f MB read) in %v\n",
			resp.Rows, resp.SubQueries, resp.PartitionsScanned,
			float64(resp.BytesScanned)/1e6, wall.Round(time.Microsecond))
		if resp.Partial {
			fmt.Printf("PARTIAL: %d partition(s) unreachable: %v\n",
				len(resp.FailedPartitions), resp.FailedPartitions)
		}
	}
	if *sql != "" {
		run(*sql)
		return
	}
	fmt.Println("connected; enter SQL, ctrl-D to exit")
	sc := bufio.NewScanner(os.Stdin)
	for {
		fmt.Print("pawsql> ")
		if !sc.Scan() {
			fmt.Println()
			return
		}
		stmt := strings.TrimSpace(sc.Text())
		if stmt == "" {
			continue
		}
		if strings.EqualFold(stmt, "exit") || strings.EqualFold(stmt, "quit") {
			return
		}
		run(stmt)
	}
}

// runLoad drives stmt from conc goroutines over one multiplexed connection
// for the window and prints throughput and latency quantiles.
func runLoad(addr, stmt string, partial bool, timeout time.Duration, conc int, window time.Duration) error {
	cl, err := dist.DialMux(addr)
	if err != nil {
		return err
	}
	defer cl.Close()
	cl.SetAllowPartial(partial)
	// One untimed warmup query validates the statement (and primes the
	// master's worker links) before the clock starts.
	if _, err := cl.Query(stmt); err != nil {
		return err
	}

	latencies := make([][]time.Duration, conc)
	errs := make([]error, conc)
	deadline := time.Now().Add(window)
	start := time.Now()
	var wg sync.WaitGroup
	for g := 0; g < conc; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for time.Now().Before(deadline) {
				ctx := context.Background()
				cancel := context.CancelFunc(func() {})
				if timeout > 0 {
					ctx, cancel = context.WithTimeout(ctx, timeout)
				}
				t0 := time.Now()
				_, err := cl.QueryContext(ctx, stmt)
				cancel()
				if err != nil {
					errs[g] = err
					return
				}
				latencies[g] = append(latencies[g], time.Since(t0))
			}
		}(g)
	}
	wg.Wait()
	elapsed := time.Since(start)
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	var all []time.Duration
	for _, ls := range latencies {
		all = append(all, ls...)
	}
	if len(all) == 0 {
		return errors.New("no queries completed inside the window")
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	fmt.Printf("%d queries in %v (%d goroutines, 1 connection)\n",
		len(all), elapsed.Round(time.Millisecond), conc)
	fmt.Printf("  %8.0f q/s   p50 %v   p99 %v   max %v\n",
		float64(len(all))/elapsed.Seconds(),
		all[len(all)/2].Round(time.Microsecond),
		all[len(all)*99/100].Round(time.Microsecond),
		all[len(all)-1].Round(time.Microsecond))
	return nil
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "pawsql: "+format+"\n", args...)
	os.Exit(1)
}
