// Command pawsql is the SQL client for a pawmaster: one-shot with -sql, or a
// REPL reading statements from stdin.
//
//	pawsql -connect 127.0.0.1:7100 -sql "SELECT * FROM t WHERE l_quantity >= 10"
//	pawsql -connect 127.0.0.1:7100 -timeout 2s -partial
package main

import (
	"bufio"
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"paw/internal/dist"
)

func main() {
	var (
		connect = flag.String("connect", "127.0.0.1:7100", "master address")
		sql     = flag.String("sql", "", "one-shot SQL statement (empty: REPL)")
		timeout = flag.Duration("timeout", 0, "per-query deadline, shipped to the master and enforced on every worker scan (0: master default)")
		partial = flag.Bool("partial", false, "accept partial results when partitions are unreachable (failed partitions are reported)")
	)
	flag.Parse()
	c, err := dist.Dial(*connect)
	if err != nil {
		fatalf("%v", err)
	}
	defer c.Close()
	c.SetAllowPartial(*partial)

	run := func(stmt string) {
		ctx := context.Background()
		cancel := context.CancelFunc(func() {})
		if *timeout > 0 {
			ctx, cancel = context.WithTimeout(ctx, *timeout)
		}
		start := time.Now()
		resp, err := c.QueryContext(ctx, stmt)
		cancel()
		if err != nil {
			fmt.Printf("error: %v\n", err)
			if errors.Is(err, context.DeadlineExceeded) {
				// The deadline interrupted the exchange mid-message; the gob
				// stream is poisoned and must be re-established.
				fatalf("connection poisoned by the deadline; re-run pawsql")
			}
			return
		}
		fmt.Printf("%d rows (%d sub-queries, %d partitions, %.2f MB read) in %v\n",
			resp.Rows, resp.SubQueries, resp.PartitionsScanned,
			float64(resp.BytesScanned)/1e6, time.Since(start).Round(time.Microsecond))
		if resp.Partial {
			fmt.Printf("PARTIAL: %d partition(s) unreachable: %v\n",
				len(resp.FailedPartitions), resp.FailedPartitions)
		}
	}
	if *sql != "" {
		run(*sql)
		return
	}
	fmt.Println("connected; enter SQL, ctrl-D to exit")
	sc := bufio.NewScanner(os.Stdin)
	for {
		fmt.Print("pawsql> ")
		if !sc.Scan() {
			fmt.Println()
			return
		}
		stmt := strings.TrimSpace(sc.Text())
		if stmt == "" {
			continue
		}
		if strings.EqualFold(stmt, "exit") || strings.EqualFold(stmt, "quit") {
			return
		}
		run(stmt)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "pawsql: "+format+"\n", args...)
	os.Exit(1)
}
