// Command pawsql is the SQL client for a pawmaster: one-shot with -sql, or a
// REPL reading statements from stdin.
//
//	pawsql -connect 127.0.0.1:7100 -sql "SELECT * FROM t WHERE l_quantity >= 10"
//	pawsql -connect 127.0.0.1:7100
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"paw/internal/dist"
)

func main() {
	var (
		connect = flag.String("connect", "127.0.0.1:7100", "master address")
		sql     = flag.String("sql", "", "one-shot SQL statement (empty: REPL)")
	)
	flag.Parse()
	c, err := dist.Dial(*connect)
	if err != nil {
		fatalf("%v", err)
	}
	defer c.Close()

	run := func(stmt string) {
		start := time.Now()
		resp, err := c.Query(stmt)
		if err != nil {
			fmt.Printf("error: %v\n", err)
			return
		}
		fmt.Printf("%d rows (%d sub-queries, %d partitions, %.2f MB read) in %v\n",
			resp.Rows, resp.SubQueries, resp.PartitionsScanned,
			float64(resp.BytesScanned)/1e6, time.Since(start).Round(time.Microsecond))
	}
	if *sql != "" {
		run(*sql)
		return
	}
	fmt.Println("connected; enter SQL, ctrl-D to exit")
	sc := bufio.NewScanner(os.Stdin)
	for {
		fmt.Print("pawsql> ")
		if !sc.Scan() {
			fmt.Println()
			return
		}
		stmt := strings.TrimSpace(sc.Text())
		if stmt == "" {
			continue
		}
		if strings.EqualFold(stmt, "exit") || strings.EqualFold(stmt, "quit") {
			return
		}
		run(stmt)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "pawsql: "+format+"\n", args...)
	os.Exit(1)
}
